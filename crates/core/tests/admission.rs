//! Differential suite for pipelined batch admission: the same batch
//! sequence pushed through [`AdmittedLsm`] (queued, coalesced, applied by
//! the background applier) must be indistinguishable, query for query and
//! byte for byte, from applying it synchronously through [`ShardedLsm`] —
//! across mixed insert/delete sequences, shard counts, and both coalescing
//! modes.  With coalescing disabled the *physical* per-shard layout must
//! match too (the applier replays exactly the sub-batches the synchronous
//! path would have applied).

use std::sync::Arc;

use gpu_lsm::{AdmissionConfig, AdmittedLsm, Op, ShardedLsm, UpdateBatch, MAX_KEY};
use gpu_sim::{Device, DeviceConfig};
use proptest::prelude::*;

const KEY_DOMAIN: u32 = 50_000;

fn device() -> Arc<Device> {
    Arc::new(Device::new(DeviceConfig::small()))
}

fn config(coalesce: bool, read_your_writes: bool) -> AdmissionConfig {
    AdmissionConfig {
        queue_capacity: 4, // small on purpose: exercises backpressure
        coalesce,
        read_your_writes,
        submit_deadline: None,
        flush_deadline: None,
    }
}

/// Compare every query surface of the admitted and synchronous structures,
/// byte for byte (range results include their offset layout).
fn assert_identical_answers(admitted: &AdmittedLsm, sync: &ShardedLsm) {
    let queries: Vec<u32> = (0..KEY_DOMAIN).step_by(13).chain([0, KEY_DOMAIN]).collect();
    assert_eq!(admitted.lookup(&queries), sync.lookup(&queries));
    let intervals: Vec<(u32, u32)> = vec![
        (0, KEY_DOMAIN / 4),
        (KEY_DOMAIN / 4, KEY_DOMAIN / 2),
        (KEY_DOMAIN / 2, KEY_DOMAIN),
        (0, MAX_KEY),
        (KEY_DOMAIN, 5), // inverted
        (17, 17),
    ];
    assert_eq!(admitted.count(&intervals), sync.count(&intervals));
    assert_eq!(admitted.range(&intervals), sync.range(&intervals));
    let points: Vec<u32> = (0..KEY_DOMAIN).step_by(611).collect();
    assert_eq!(admitted.successor(&points), sync.successor(&points));
    assert_eq!(admitted.predecessor(&points), sync.predecessor(&points));
}

/// A mixed batch with distinct keys, biased toward key collisions across
/// batches so coalescing actually supersedes operations.
fn arb_batch(batch_size: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::btree_map(
        0..KEY_DOMAIN / 16, // narrow domain: heavy cross-batch overlap
        (any::<bool>(), any::<u32>()),
        1..=batch_size,
    )
    .prop_map(|m| {
        m.into_iter()
            .map(|(k, (is_delete, v))| {
                if is_delete {
                    Op::Delete(k)
                } else {
                    Op::Insert(k, v)
                }
            })
            .collect()
    })
}

fn run_differential(batch_seqs: &[Vec<Op>], shards: usize, coalesce: bool) {
    let batch_size = 64usize;
    let sync = ShardedLsm::new(device(), batch_size, shards).unwrap();
    let admitted = AdmittedLsm::with_config(
        ShardedLsm::new(device(), batch_size, shards).unwrap(),
        config(coalesce, false),
    );
    for ops in batch_seqs {
        let mut batch = UpdateBatch::new();
        for op in ops {
            batch.push(*op);
        }
        sync.update(&batch).unwrap();
        admitted.submit(&batch).unwrap();
    }
    admitted.flush().unwrap();
    assert_identical_answers(&admitted, &sync);
    admitted.check_invariants().unwrap();
    if !coalesce {
        // Replay mode: the physical per-shard layout is byte-identical.
        let a = admitted.stats();
        let s = sync.stats();
        assert_eq!(a.total_elements, s.total_elements);
        for (sa, ss) in a.per_shard.iter().zip(s.per_shard.iter()) {
            assert_eq!(sa.num_batches, ss.num_batches);
            assert_eq!(sa.level_sizes, ss.level_sizes);
            assert_eq!(sa.valid_elements, ss.valid_elements);
            assert_eq!(sa.stale_elements, ss.stale_elements);
        }
    } else {
        // Coalescing may only *reduce* residency, never change validity.
        let a = admitted.stats();
        let s = sync.stats();
        assert_eq!(a.valid_elements, s.valid_elements);
        assert!(a.total_elements <= s.total_elements);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn prop_coalesced_admission_matches_synchronous(
        batch_seqs in proptest::collection::vec(arb_batch(64), 4..16)
    ) {
        for shards in [1usize, 4] {
            run_differential(&batch_seqs, shards, true);
        }
    }

    #[test]
    fn prop_replay_admission_is_byte_identical(
        batch_seqs in proptest::collection::vec(arb_batch(64), 4..12)
    ) {
        for shards in [2usize, 8] {
            run_differential(&batch_seqs, shards, false);
        }
    }

    /// Read-your-writes mode answers like a fully synchronous structure
    /// *without* the test issuing any flush.
    #[test]
    fn prop_read_your_writes_needs_no_flush(
        batch_seqs in proptest::collection::vec(arb_batch(32), 2..8)
    ) {
        let sync = ShardedLsm::new(device(), 32, 2).unwrap();
        let admitted = AdmittedLsm::with_config(
            ShardedLsm::new(device(), 32, 2).unwrap(),
            config(true, true),
        );
        for ops in &batch_seqs {
            let mut batch = UpdateBatch::new();
            for op in ops {
                batch.push(*op);
            }
            sync.update(&batch).unwrap();
            admitted.submit(&batch).unwrap();
            // Point lookups overlay the queues; interval queries drain
            // internally.  Either way: identical answers immediately.
            let probes: Vec<u32> = ops.iter().map(Op::key).chain(0..64).collect();
            prop_assert_eq!(admitted.lookup(&probes), sync.lookup(&probes));
            prop_assert_eq!(
                admitted.count(&[(0, MAX_KEY)]),
                sync.count(&[(0, MAX_KEY)])
            );
        }
        assert_identical_answers(&admitted, &sync);
    }
}

#[test]
fn concurrent_submitters_drain_to_a_consistent_state() {
    // 4 writer threads over disjoint key stripes; the admitted and the
    // synchronous structures must agree on every stripe's final state
    // (per-writer order is preserved by the per-shard FIFO queues).
    let batch_size = 32usize;
    let admitted = AdmittedLsm::with_config(
        ShardedLsm::new(device(), batch_size, 4).unwrap(),
        config(true, false),
    );
    let sync = ShardedLsm::new(device(), batch_size, 4).unwrap();
    std::thread::scope(|scope| {
        for w in 0..4u32 {
            let admitted = admitted.clone();
            scope.spawn(move || {
                for round in 0..24u32 {
                    let mut batch = UpdateBatch::new();
                    for i in 0..batch_size as u32 {
                        let key = w * (1 << 28) + (i % 16);
                        if round % 3 == 2 && i < 8 {
                            batch.delete(key);
                        } else {
                            batch.insert(key, round * 100 + i);
                        }
                    }
                    admitted.submit(&batch).unwrap();
                }
            });
        }
    });
    admitted.flush().unwrap();
    // Replay the same deterministic per-writer streams synchronously (any
    // interleaving of disjoint-stripe writers commutes).
    for w in 0..4u32 {
        for round in 0..24u32 {
            let mut batch = UpdateBatch::new();
            for i in 0..batch_size as u32 {
                let key = w * (1 << 28) + (i % 16);
                if round % 3 == 2 && i < 8 {
                    batch.delete(key);
                } else {
                    batch.insert(key, round * 100 + i);
                }
            }
            sync.update(&batch).unwrap();
        }
    }
    let keys: Vec<u32> = (0..4u32)
        .flat_map(|w| (0..16).map(move |i| w * (1 << 28) + i))
        .collect();
    assert_eq!(admitted.lookup(&keys), sync.lookup(&keys));
    assert_eq!(admitted.count(&[(0, MAX_KEY)]), sync.count(&[(0, MAX_KEY)]));
    admitted.check_invariants().unwrap();
    let stats = admitted.admission_stats();
    assert_eq!(stats.submitted_batches, 96);
    assert_eq!(stats.queued_batches, 0);
    assert!(
        stats.coalesced_batches > 0,
        "sustained traffic must coalesce"
    );
}
