//! Kill-at-arbitrary-point crash-recovery harness.
//!
//! A seeded op stream runs through a WAL-enabled [`AdmittedLsm`], is torn
//! down at a random point — at a record boundary, mid-record, or with a
//! corrupted checksum — recovered with [`AdmittedLsm::open_durable`], and
//! differentially compared against a `BTreeMap` model on every query
//! surface (lookup, count, range, successor, predecessor).  The model is
//! rolled back to exactly the surviving WAL prefix, so the comparison
//! proves both that durable records replay and that torn or corrupt tails
//! are truncated, never replayed.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gpu_lsm::{
    AdmittedLsm, DegradeMode, DurabilityConfig, Fault, FaultOp, FaultVfs, LsmConfig, LsmError, Op,
    RetryPolicy, ShardedLsm, UpdateBatch, MAX_KEY,
};
use gpu_sim::{Device, DeviceConfig};

const BATCH_SIZE: usize = 32;

fn device() -> Arc<Device> {
    Arc::new(Device::new(DeviceConfig::small()))
}

/// A unique, collision-free scratch directory per call.
fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gpu-lsm-recovery-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dir: &Path) -> LsmConfig {
    LsmConfig::default().durability(DurabilityConfig::new(dir).fsync_interval(4))
}

/// xorshift64*: deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_batch(rng: &mut Rng, max_ops: usize) -> UpdateBatch {
    let ops = 1 + rng.below(max_ops as u64 - 1) as usize;
    let mut batch = UpdateBatch::new();
    for _ in 0..ops {
        let key = rng.below(MAX_KEY as u64) as u32;
        if rng.below(4) == 0 {
            batch.delete(key);
        } else {
            batch.insert(key, (rng.next() & 0xFFFF) as u32);
        }
    }
    batch
}

/// Apply one batch to the model under the structure's batch semantics: a
/// deletion of a key shadows the batch's insertions of it (rule 6), among
/// insertions the first wins (rule 4).
fn apply_to_model(model: &mut BTreeMap<u32, u32>, batch: &UpdateBatch) {
    let mut decision: HashMap<u32, Option<u32>> = HashMap::new();
    for op in batch.ops() {
        match op {
            Op::Insert(k, v) => {
                decision.entry(*k).or_insert(Some(*v));
            }
            Op::Delete(k) => {
                decision.insert(*k, None);
            }
        }
    }
    for (k, d) in decision {
        match d {
            Some(v) => {
                model.insert(k, v);
            }
            None => {
                model.remove(&k);
            }
        }
    }
}

/// Differential check over every query surface.
fn assert_matches_model(lsm: &AdmittedLsm, model: &BTreeMap<u32, u32>, rng: &mut Rng) {
    let mut keys: Vec<u32> = model.keys().copied().collect();
    for _ in 0..32 {
        keys.push(rng.below(MAX_KEY as u64) as u32);
    }
    let got = lsm.lookup(&keys);
    for (k, g) in keys.iter().zip(&got) {
        assert_eq!(*g, model.get(k).copied(), "lookup {k}");
    }

    let mut intervals = Vec::new();
    for _ in 0..8 {
        let a = rng.below(MAX_KEY as u64) as u32;
        let b = rng.below(MAX_KEY as u64) as u32;
        intervals.push((a.min(b), a.max(b)));
    }
    let counts = lsm.count(&intervals);
    let ranges = lsm.range(&intervals);
    for (i, &(lo, hi)) in intervals.iter().enumerate() {
        let want: Vec<(u32, u32)> = model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(counts[i] as usize, want.len(), "count [{lo}, {hi}]");
        let got: Vec<(u32, u32)> = ranges.iter_query(i).collect();
        assert_eq!(got, want, "range [{lo}, {hi}]");
    }

    for _ in 0..16 {
        let q = rng.below(MAX_KEY as u64) as u32;
        let suc = model
            .range((Bound::Excluded(q), Bound::Unbounded))
            .next()
            .map(|(k, v)| (*k, *v));
        assert_eq!(lsm.successor(&[q]), vec![suc], "successor {q}");
        let pred = model.range(..q).next_back().map(|(k, v)| (*k, *v));
        assert_eq!(lsm.predecessor(&[q]), vec![pred], "predecessor {q}");
    }
}

fn truncate_at(path: &Path, len: u64) {
    let file = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    file.set_len(len).unwrap();
}

fn flip_byte_at(path: &Path, offset: u64) {
    let mut bytes = std::fs::read(path).unwrap();
    bytes[offset as usize] ^= 0xA5;
    std::fs::write(path, bytes).unwrap();
}

#[derive(Clone, Copy, PartialEq)]
enum CutStyle {
    /// Truncate at a record boundary: a clean crash between appends.
    RecordBoundary,
    /// Truncate inside a record: a torn tail.
    MidRecord,
    /// Flip a payload byte: a checksum mismatch mid-segment; the damaged
    /// record and everything after it must be dropped.
    CorruptByte,
}

/// One seeded run: write through the WAL with random flush barriers, tear
/// the log at a random point in the chosen style, recover, and compare
/// against the model rolled back to the surviving prefix.
fn run_kill_point_case(seed: u64, style: CutStyle) {
    let dir = temp_dir("fuzz");
    let mut rng = Rng::new(seed.wrapping_mul(3) + style as u64 + 1);
    let device = device();

    let (lsm, report) =
        AdmittedLsm::open_durable(device.clone(), BATCH_SIZE, 2, config(&dir)).unwrap();
    assert_eq!(report.replayed_batches, 0);
    assert_eq!(report.manifest_seq, None);

    let mut history: Vec<UpdateBatch> = Vec::new();
    let mut covered = 0usize; // batches captured by the last snapshot
    let num_batches = 6 + rng.below(10) as usize;
    for _ in 0..num_batches {
        let batch = random_batch(&mut rng, BATCH_SIZE);
        lsm.submit(&batch).unwrap();
        history.push(batch);
        if rng.below(4) == 0 {
            // A barrier over the now-idle pipeline snapshots and rotates
            // the WAL: everything so far moves into the manifest.
            lsm.flush().unwrap();
            covered = history.len();
        }
    }
    let manifest_seq = lsm.durability_stats().unwrap().manifest_seq;
    drop(lsm); // drains and closes; deliberately does NOT snapshot

    // The active segment holds exactly `history[covered..]`, framed as
    // 16-byte header + 8 bytes per op — computable without the scanner.
    let seg_path = dir.join(format!("wal-{manifest_seq}.log"));
    let frames: Vec<u64> = history[covered..]
        .iter()
        .map(|b| (16 + 8 * b.len()) as u64)
        .collect();
    let total: u64 = frames.iter().sum();
    assert_eq!(std::fs::metadata(&seg_path).unwrap().len(), total);

    // Kill: decide how many records survive, then damage the file so that
    // exactly that prefix is recoverable.
    let survivors = if frames.is_empty() {
        0
    } else {
        match style {
            CutStyle::RecordBoundary => {
                let m = rng.below(frames.len() as u64 + 1) as usize;
                truncate_at(&seg_path, frames[..m].iter().sum());
                m
            }
            CutStyle::MidRecord => {
                let m = rng.below(frames.len() as u64) as usize;
                let within = 1 + rng.below(frames[m] - 1);
                truncate_at(&seg_path, frames[..m].iter().sum::<u64>() + within);
                m
            }
            CutStyle::CorruptByte => {
                let m = rng.below(frames.len() as u64) as usize;
                let start: u64 = frames[..m].iter().sum();
                flip_byte_at(&seg_path, start + 16 + rng.below(frames[m] - 16));
                m
            }
        }
    };

    let mut model = BTreeMap::new();
    for batch in &history[..covered + survivors] {
        apply_to_model(&mut model, batch);
    }

    let (lsm, report) =
        AdmittedLsm::open_durable(device.clone(), BATCH_SIZE, 2, config(&dir)).unwrap();
    assert_eq!(report.replayed_batches, survivors as u64, "replayed prefix");
    if !frames.is_empty() {
        match style {
            CutStyle::RecordBoundary => assert_eq!(report.torn_bytes, 0),
            CutStyle::MidRecord | CutStyle::CorruptByte => assert!(report.torn_bytes > 0),
        }
    }
    assert_eq!(
        report.manifest_seq,
        (manifest_seq > 0).then_some(manifest_seq)
    );
    assert_matches_model(&lsm, &model, &mut rng);
    lsm.check_invariants().unwrap();

    // Life goes on after recovery: new writes land, and a second recovery
    // (with a clean tail this time) reproduces the same state.
    let extra = random_batch(&mut rng, BATCH_SIZE);
    lsm.submit(&extra).unwrap();
    lsm.flush().unwrap();
    apply_to_model(&mut model, &extra);
    assert_matches_model(&lsm, &model, &mut rng);
    drop(lsm);

    let (lsm, _) = AdmittedLsm::open_durable(device, BATCH_SIZE, 2, config(&dir)).unwrap();
    assert_matches_model(&lsm, &model, &mut rng);
    drop(lsm);
    std::fs::remove_dir_all(&dir).ok();
}

/// 35 seeds × 3 cut styles = 105 distinct kill points.
#[test]
fn recovery_fuzz_kill_points() {
    for seed in 0..35 {
        run_kill_point_case(seed, CutStyle::RecordBoundary);
        run_kill_point_case(seed, CutStyle::MidRecord);
        run_kill_point_case(seed, CutStyle::CorruptByte);
    }
}

#[test]
fn durable_round_trip_and_stats() {
    let dir = temp_dir("round-trip");
    let (lsm, _) = AdmittedLsm::open_durable(device(), BATCH_SIZE, 2, config(&dir)).unwrap();
    lsm.insert(&[(1, 10), (1 << 30, 20), (7, 70)]).unwrap();
    lsm.delete(&[7]).unwrap();
    lsm.flush().unwrap();

    let stats = lsm.durability_stats().unwrap();
    assert_eq!(stats.wal_records, 2);
    assert!(stats.wal_syncs >= 1, "snapshot syncs the log first");
    assert_eq!(stats.snapshots, 1);
    assert_eq!(stats.manifest_seq, 1);
    drop(lsm);

    let (lsm, report) = AdmittedLsm::open_durable(device(), BATCH_SIZE, 2, config(&dir)).unwrap();
    // The barrier snapshotted everything: nothing left to replay.
    assert_eq!(report.replayed_batches, 0);
    assert_eq!(report.manifest_seq, Some(1));
    assert_eq!(report.torn_bytes, 0);
    assert_eq!(lsm.lookup(&[1, 1 << 30, 7]), vec![Some(10), Some(20), None]);
    drop(lsm);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_layout_survives_restart() {
    let dir = temp_dir("layout");
    let (lsm, _) = AdmittedLsm::open_durable(device(), BATCH_SIZE, 1, config(&dir)).unwrap();
    let pairs: Vec<(u32, u32)> = (0..BATCH_SIZE as u32)
        .map(|i| (i * 1_000_003, i + 1))
        .collect();
    lsm.insert(&pairs).unwrap();
    lsm.flush().unwrap();
    lsm.trigger_split_at(0, 1 << 24).unwrap();

    let shards = lsm.service().num_shards();
    let epoch = lsm.service().epoch();
    assert_eq!(shards, 2);
    drop(lsm);

    let (lsm, _) = AdmittedLsm::open_durable(device(), BATCH_SIZE, 1, config(&dir)).unwrap();
    // `num_shards = 1` is ignored: the manifest's layout wins, epoch
    // included (so routing generations stay monotonic across restarts).
    assert_eq!(lsm.service().num_shards(), shards);
    assert_eq!(lsm.service().epoch(), epoch);
    let keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
    let want: Vec<Option<u32>> = pairs.iter().map(|&(_, v)| Some(v)).collect();
    assert_eq!(lsm.lookup(&keys), want);
    lsm.check_invariants().unwrap();
    drop(lsm);
    std::fs::remove_dir_all(&dir).ok();
}

/// The crash the manual truncations above can only approximate: the
/// storage dies *between* an acknowledged append and its batched fsync.
/// Under `DegradeToVolatile` the WAL seals at the last *synced* boundary —
/// acked-but-unsynced records were never promised durable (that is the
/// documented fsync-batching contract) — so recovery must replay exactly
/// the multiple-of-interval prefix, not the acked count.
#[test]
fn fault_cut_between_append_and_batched_fsync_replays_synced_prefix() {
    const INTERVAL: usize = 4;
    let dir = temp_dir("fsync-cut");
    // Sync occurrence 0 (records 1..=4) succeeds; occurrence 1 (triggered
    // by record 8) and everything after fails forever.
    let fault = FaultVfs::scripted(vec![Fault::permanent(
        FaultOp::Sync,
        1,
        std::io::ErrorKind::Other,
    )]);
    let cfg = LsmConfig::default().durability(
        DurabilityConfig::new(&dir)
            .fsync_interval(INTERVAL)
            .retry(RetryPolicy::none())
            .degrade(DegradeMode::DegradeToVolatile)
            .vfs(Arc::new(fault.clone())),
    );
    let (lsm, _) = AdmittedLsm::open_durable(device(), BATCH_SIZE, 2, cfg).unwrap();

    let mut rng = Rng::new(0xC0FFEE);
    let mut history = Vec::new();
    for _ in 0..10 {
        let batch = random_batch(&mut rng, BATCH_SIZE);
        lsm.submit(&batch).unwrap(); // batch 8 degrades; all still admitted
        history.push(batch);
    }
    lsm.flush().unwrap();
    let stats = lsm.durability_stats().unwrap();
    assert!(stats.degraded);
    // Records 1..=7 were acked (record 8 rolled back with its failed
    // sync); of those only the synced 1..=4 are durable — the seal
    // discards the acked-but-unsynced 5..=7, as replay below proves.
    assert_eq!(stats.wal_records, 7);
    let mut full = BTreeMap::new();
    for batch in &history {
        apply_to_model(&mut full, batch);
    }
    assert_matches_model(&lsm, &full, &mut rng);
    drop(lsm);

    let mut prefix = BTreeMap::new();
    for batch in &history[..INTERVAL] {
        apply_to_model(&mut prefix, batch);
    }
    let (lsm, report) = AdmittedLsm::open_durable(device(), BATCH_SIZE, 2, config(&dir)).unwrap();
    assert!(report.prior_degraded);
    assert_eq!(report.replayed_batches, INTERVAL as u64, "synced boundary");
    assert_eq!(report.torn_bytes, 0, "the seal left no torn tail");
    assert_matches_model(&lsm, &prefix, &mut rng);
    lsm.check_invariants().unwrap();
    drop(lsm);
    std::fs::remove_dir_all(&dir).ok();
}

/// Incremental snapshots: a generation whose level data did not change
/// must carry the run file over by reference instead of rewriting it.
#[test]
fn unchanged_runs_are_reused_across_snapshot_generations() {
    let dir = temp_dir("incremental");
    let (lsm, _) = AdmittedLsm::open_durable(device(), BATCH_SIZE, 2, config(&dir)).unwrap();

    // Fill shard 0 (low keys) and snapshot it.
    let low: Vec<(u32, u32)> = (0..BATCH_SIZE as u32).map(|i| (i, i + 1)).collect();
    lsm.insert(&low).unwrap();
    lsm.flush().unwrap();
    assert_eq!(lsm.durability_stats().unwrap().manifest_seq, 1);

    // Touch only shard 1 (high keys): generation 2 must reuse shard 0's
    // run untouched.
    let high: Vec<(u32, u32)> = (0..BATCH_SIZE as u32)
        .map(|i| ((1 << 30) + i, i + 1))
        .collect();
    lsm.insert(&high).unwrap();
    lsm.flush().unwrap();
    let stats = lsm.durability_stats().unwrap();
    assert_eq!(stats.manifest_seq, 2);
    assert!(stats.runs_reused >= 1, "reused: {}", stats.runs_reused);

    // The reused run physically belongs to generation 1 and must have
    // survived generation 2's garbage collection.
    assert!(dir.join("run-1-0-0.bin").exists(), "carried-over run kept");
    drop(lsm);

    let (lsm, report) = AdmittedLsm::open_durable(device(), BATCH_SIZE, 2, config(&dir)).unwrap();
    assert_eq!(report.manifest_seq, Some(2));
    assert_eq!(report.replayed_batches, 0);
    let keys: Vec<u32> = low.iter().chain(&high).map(|&(k, _)| k).collect();
    let want: Vec<Option<u32>> = low.iter().chain(&high).map(|&(_, v)| Some(v)).collect();
    assert_eq!(lsm.lookup(&keys), want);
    lsm.check_invariants().unwrap();
    drop(lsm);
    std::fs::remove_dir_all(&dir).ok();
}

/// Wait until the admission layer reports the applier's death.
fn await_applier_death(lsm: &AdmittedLsm) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match lsm.flush() {
            Err(LsmError::ApplierPanicked { payload }) => return payload,
            Ok(()) => {
                assert!(Instant::now() < deadline, "applier never died");
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => panic!("unexpected flush error: {e}"),
        }
    }
}

#[test]
fn applier_panic_surfaces_typed_error_and_drop_stays_clean() {
    let lsm = AdmittedLsm::new(ShardedLsm::new(device(), 16, 2).unwrap());
    lsm.insert(&[(1, 1)]).unwrap();
    lsm.flush().unwrap();

    lsm.inject_applier_panic();
    let payload = await_applier_death(&lsm);
    assert!(payload.contains("injected"), "payload: {payload}");

    // Every write-path entry point now reports the death instead of
    // hanging or poisoning its caller.
    assert!(matches!(
        lsm.insert(&[(2, 2)]),
        Err(LsmError::ApplierPanicked { .. })
    ));
    assert!(matches!(lsm.flush(), Err(LsmError::ApplierPanicked { .. })));
    assert!(matches!(
        lsm.cleanup(),
        Err(LsmError::ApplierPanicked { .. })
    ));
    assert!(matches!(
        lsm.trigger_rebalance_check(),
        Err(LsmError::ApplierPanicked { .. })
    ));
    assert!(lsm.check_invariants().is_err());

    // Diagnostics still answer from the poisoned locks, and reads fall
    // back to applied state.
    let stats = lsm.admission_stats();
    assert_eq!(stats.submitted_batches, 1);
    let _ = lsm.latency_stats();
    let _ = lsm.latency_histograms();
    assert_eq!(lsm.lookup(&[1]), vec![Some(1)]);

    // Dropping must join the dead applier without a double-panic abort.
    drop(lsm);
}

#[test]
fn applier_panic_with_durability_fails_submit_without_logging() {
    let dir = temp_dir("panic-durable");
    let (lsm, _) = AdmittedLsm::open_durable(device(), BATCH_SIZE, 2, config(&dir)).unwrap();
    lsm.insert(&[(5, 50)]).unwrap();
    lsm.flush().unwrap();
    let records_before = lsm.durability_stats().unwrap().wal_records;

    lsm.inject_applier_panic();
    await_applier_death(&lsm);
    assert!(matches!(
        lsm.insert(&[(6, 60)]),
        Err(LsmError::ApplierPanicked { .. })
    ));
    // The rejected submit must not have reached the log: on recovery the
    // key is absent.
    assert_eq!(lsm.durability_stats().unwrap().wal_records, records_before);
    drop(lsm);

    let (lsm, _) = AdmittedLsm::open_durable(device(), BATCH_SIZE, 2, config(&dir)).unwrap();
    assert_eq!(lsm.lookup(&[5, 6]), vec![Some(50), None]);
    drop(lsm);
    std::fs::remove_dir_all(&dir).ok();
}
