//! Deterministic IO fault injection over the durability pipeline.
//!
//! Every test threads a [`FaultVfs`] — scripted or seeded — under a
//! WAL-enabled [`AdmittedLsm`] and differentially compares the surviving
//! state against a `BTreeMap` model:
//!
//! * transient faults (including torn short-writes) must be retried away
//!   invisibly — same answers, same recovery, only the retry counters move;
//! * permanent fsync failure under [`DegradeMode::DegradeToVolatile`] must
//!   keep admitting in memory, raise the sticky degraded flag, and recover
//!   byte-for-byte the model truncated at the last durable batch;
//! * the same failure under [`DegradeMode::FailStop`] must surface a typed
//!   error from `submit` instead;
//! * a seeded fault sweep must always recover *some* exact batch prefix —
//!   never a torn half-batch, never reordered state;
//! * garbage-collection failures must be counted and surfaced, not
//!   swallowed.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gpu_lsm::{
    AdmittedLsm, DegradeMode, DurabilityConfig, Fault, FaultOp, FaultVfs, LsmConfig, LsmError, Op,
    RetryPolicy, UpdateBatch, MAX_KEY,
};
use gpu_sim::{Device, DeviceConfig};

const BATCH_SIZE: usize = 32;
/// Narrow key domain so the differential dump below stays cheap.
const KEY_DOMAIN: u32 = 512;

fn device() -> Arc<Device> {
    Arc::new(Device::new(DeviceConfig::small()))
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gpu-lsm-faults-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A durable config running on the given (possibly faulty) VFS.
fn config_on(dir: &Path, fault: &FaultVfs, durability: DurabilityConfig) -> LsmConfig {
    let _ = dir;
    LsmConfig::default().durability(durability.vfs(Arc::new(fault.clone())))
}

/// A durable config on the real filesystem (clean reopen after faults).
fn clean_config(dir: &Path) -> LsmConfig {
    LsmConfig::default().durability(DurabilityConfig::new(dir).fsync_interval(4))
}

/// xorshift64*: deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_batch(rng: &mut Rng) -> UpdateBatch {
    let ops = 1 + rng.below(BATCH_SIZE as u64 - 1) as usize;
    let mut batch = UpdateBatch::new();
    for _ in 0..ops {
        let key = rng.below(KEY_DOMAIN as u64) as u32;
        if rng.below(4) == 0 {
            batch.delete(key);
        } else {
            batch.insert(key, (rng.next() & 0xFFFF) as u32);
        }
    }
    batch
}

/// Apply one batch under the structure's semantics (per key: a deletion
/// shadows the batch's insertions, else the first insertion wins).
fn apply_to_model(model: &mut BTreeMap<u32, u32>, batch: &UpdateBatch) {
    let mut decision: HashMap<u32, Option<u32>> = HashMap::new();
    for op in batch.ops() {
        match op {
            Op::Insert(k, v) => {
                decision.entry(*k).or_insert(Some(*v));
            }
            Op::Delete(k) => {
                decision.insert(*k, None);
            }
        }
    }
    for (k, d) in decision {
        match d {
            Some(v) => {
                model.insert(k, v);
            }
            None => {
                model.remove(&k);
            }
        }
    }
}

/// Full dump of the structure over the key domain — the differential unit
/// the prefix checks compare on.
fn dump(lsm: &AdmittedLsm) -> Vec<Option<u32>> {
    let keys: Vec<u32> = (0..KEY_DOMAIN).collect();
    lsm.lookup(&keys)
}

fn dump_of_model(model: &BTreeMap<u32, u32>) -> Vec<Option<u32>> {
    (0..KEY_DOMAIN).map(|k| model.get(&k).copied()).collect()
}

fn assert_state(lsm: &AdmittedLsm, model: &BTreeMap<u32, u32>, what: &str) {
    assert_eq!(dump(lsm), dump_of_model(model), "{what}");
    assert_eq!(
        lsm.count(&[(0, MAX_KEY)]),
        vec![model.len() as u32],
        "{what}: total count"
    );
}

#[test]
fn transient_faults_are_retried_invisibly() {
    let dir = temp_dir("transient");
    // Three distinct transient failures on the WAL hot path: a flaky
    // append, a torn short-write (partial frame must be rolled back, then
    // rewritten whole), and a flaky fsync.
    let fault = FaultVfs::scripted(vec![
        Fault::transient(FaultOp::Append, 2, io::ErrorKind::Interrupted),
        Fault::short_write(FaultOp::Append, 5, 7),
        Fault::transient(FaultOp::Sync, 1, io::ErrorKind::Other),
    ]);
    let cfg = config_on(&dir, &fault, DurabilityConfig::new(&dir).fsync_interval(2));
    let (lsm, _) = AdmittedLsm::open_durable(device(), BATCH_SIZE, 2, cfg).unwrap();

    let mut rng = Rng::new(0xFA);
    let mut model = BTreeMap::new();
    for _ in 0..8 {
        let batch = random_batch(&mut rng);
        lsm.submit(&batch).unwrap(); // every fault is absorbed by a retry
        apply_to_model(&mut model, &batch);
    }
    lsm.flush().unwrap();
    assert_state(&lsm, &model, "live state under transient faults");

    let stats = lsm.durability_stats().unwrap();
    assert_eq!(stats.wal_records, 8, "no record lost or double-logged");
    assert!(stats.wal_retries >= 3, "retries: {}", stats.wal_retries);
    assert!(!stats.degraded);
    assert_eq!(fault.injected_faults(), 3, "whole script consumed");
    drop(lsm);

    // The log the retries left behind recovers like a clean one.
    let (lsm, report) =
        AdmittedLsm::open_durable(device(), BATCH_SIZE, 2, clean_config(&dir)).unwrap();
    assert_eq!(report.torn_bytes, 0);
    assert!(!report.prior_degraded);
    assert_state(&lsm, &model, "recovered state under transient faults");
    lsm.check_invariants().unwrap();
    drop(lsm);
    std::fs::remove_dir_all(&dir).ok();
}

/// Batches durable before the permanent fsync failure strikes (0-based
/// Sync occurrence; `fsync_interval = 1` makes occurrence i = batch i).
const DURABLE_PREFIX: usize = 3;

fn permanent_fsync_script() -> Vec<Fault> {
    vec![Fault::permanent(
        FaultOp::Sync,
        DURABLE_PREFIX as u64,
        io::ErrorKind::Other,
    )]
}

#[test]
fn permanent_fsync_failure_degrades_to_volatile_and_prefix_recovers() {
    let dir = temp_dir("degrade");
    let fault = FaultVfs::scripted(permanent_fsync_script());
    let cfg = config_on(
        &dir,
        &fault,
        DurabilityConfig::new(&dir)
            .fsync_interval(1)
            .retry(RetryPolicy::none())
            .degrade(DegradeMode::DegradeToVolatile),
    );
    let (lsm, report) = AdmittedLsm::open_durable(device(), BATCH_SIZE, 2, cfg).unwrap();
    assert!(!report.prior_degraded);

    let mut rng = Rng::new(0xDE);
    let mut full = BTreeMap::new();
    let mut prefix = BTreeMap::new();
    for i in 0..6 {
        let batch = random_batch(&mut rng);
        // The storage dies at batch DURABLE_PREFIX, but admission carries
        // on: every submit succeeds.
        lsm.submit(&batch).unwrap();
        apply_to_model(&mut full, &batch);
        if i < DURABLE_PREFIX {
            apply_to_model(&mut prefix, &batch);
        }
    }
    lsm.flush().unwrap(); // degraded: drains, but never snapshots

    let stats = lsm.durability_stats().unwrap();
    assert!(stats.degraded, "sticky flag raised");
    assert!(lsm.stats().durability_degraded, "surfaced in ShardedStats");
    assert_eq!(stats.wal_records, DURABLE_PREFIX as u64, "sealed boundary");
    assert_eq!(stats.snapshots, 0, "no snapshot of unlogged state");
    assert_state(&lsm, &full, "degraded service still serves everything");
    lsm.check_invariants().unwrap();
    drop(lsm);
    assert!(
        dir.join("DEGRADED").exists(),
        "marker left for the next recovery"
    );

    // Recovery from the degraded generation: exactly the durable prefix.
    let (lsm, report) =
        AdmittedLsm::open_durable(device(), BATCH_SIZE, 2, clean_config(&dir)).unwrap();
    assert!(report.prior_degraded, "prior degradation reported");
    assert_eq!(report.replayed_batches, DURABLE_PREFIX as u64);
    assert_state(
        &lsm,
        &prefix,
        "recovered = model truncated at last durable batch",
    );
    assert!(!lsm.stats().durability_degraded, "fresh handle is healthy");
    assert!(!dir.join("DEGRADED").exists(), "marker cleared on recovery");

    // And the new incarnation is durable again end to end.
    let extra = random_batch(&mut rng);
    lsm.submit(&extra).unwrap();
    lsm.flush().unwrap();
    apply_to_model(&mut prefix, &extra);
    drop(lsm);
    let (lsm, report) =
        AdmittedLsm::open_durable(device(), BATCH_SIZE, 2, clean_config(&dir)).unwrap();
    assert!(!report.prior_degraded);
    assert_state(&lsm, &prefix, "healthy again after recovery");
    drop(lsm);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn permanent_fsync_failure_fail_stops_with_typed_error() {
    let dir = temp_dir("failstop");
    let fault = FaultVfs::scripted(permanent_fsync_script());
    // DegradeMode::FailStop is the default.
    let cfg = config_on(
        &dir,
        &fault,
        DurabilityConfig::new(&dir)
            .fsync_interval(1)
            .retry(RetryPolicy::none()),
    );
    let (lsm, _) = AdmittedLsm::open_durable(device(), BATCH_SIZE, 2, cfg).unwrap();

    let mut rng = Rng::new(0xDE); // same stream as the degrade test
    let mut prefix = BTreeMap::new();
    for i in 0..6 {
        let batch = random_batch(&mut rng);
        let result = lsm.submit(&batch);
        if i < DURABLE_PREFIX {
            result.unwrap();
            apply_to_model(&mut prefix, &batch);
        } else {
            // Same script, opposite policy: the loss is the caller's to
            // see, batch by batch.
            assert!(
                matches!(result, Err(LsmError::Durability { .. })),
                "batch {i}: {result:?}"
            );
        }
    }
    // The barrier's snapshot also hits the dead fsync: fail-stop reports
    // that too instead of quietly keeping an uncovered WAL.
    assert!(matches!(lsm.flush(), Err(LsmError::Durability { .. })));
    assert!(!lsm.durability_stats().unwrap().degraded);
    assert_state(&lsm, &prefix, "rejected batches were never admitted");
    drop(lsm);
    assert!(!dir.join("DEGRADED").exists());

    let (lsm, report) =
        AdmittedLsm::open_durable(device(), BATCH_SIZE, 2, clean_config(&dir)).unwrap();
    assert!(!report.prior_degraded);
    assert_state(&lsm, &prefix, "recovered fail-stop state");
    drop(lsm);
    std::fs::remove_dir_all(&dir).ok();
}

/// Seeded chaos sweep: whatever the fault pattern does to the pipeline —
/// flaky appends, dying snapshots, failing GC — a recovery with healthy
/// storage must land on an *exact batch prefix* of the submitted history.
#[test]
fn seeded_fault_sweep_always_recovers_an_exact_batch_prefix() {
    const BATCHES: usize = 6;
    let mut opened = 0u32;
    let mut degraded_runs = 0u32;
    for (seed, period) in [(1, 7), (2, 11), (3, 13), (4, 17), (5, 23), (6, 29)] {
        let dir = temp_dir("sweep");
        let fault = FaultVfs::seeded(seed, period);
        let cfg = config_on(
            &dir,
            &fault,
            DurabilityConfig::new(&dir)
                .fsync_interval(2)
                .retry(RetryPolicy::new(2, std::time::Duration::from_micros(10)))
                .degrade(DegradeMode::DegradeToVolatile),
        );
        // The very open can hit an injected fault; fail-stop at open is a
        // legitimate outcome — the sweep only claims invariants for
        // incarnations that came up.
        let Ok((lsm, _)) = AdmittedLsm::open_durable(device(), BATCH_SIZE, 2, cfg) else {
            std::fs::remove_dir_all(&dir).ok();
            continue;
        };
        opened += 1;

        let mut rng = Rng::new(seed);
        // models[i] = state after the first i batches.
        let mut models: Vec<BTreeMap<u32, u32>> = vec![BTreeMap::new()];
        for i in 0..BATCHES {
            let batch = random_batch(&mut rng);
            lsm.submit(&batch).unwrap(); // degrade mode: submits never fail
            let mut next = models.last().unwrap().clone();
            apply_to_model(&mut next, &batch);
            models.push(next);
            if i == BATCHES / 2 {
                lsm.flush().unwrap(); // mid-stream snapshot attempt
            }
        }
        lsm.flush().unwrap();
        assert_state(&lsm, models.last().unwrap(), "live state ignores faults");
        if lsm.durability_stats().unwrap().degraded {
            degraded_runs += 1;
        }
        drop(lsm);

        let (lsm, _) =
            AdmittedLsm::open_durable(device(), BATCH_SIZE, 2, clean_config(&dir)).unwrap();
        let got = dump(&lsm);
        let matched = models.iter().position(|m| dump_of_model(m) == got);
        assert!(
            matched.is_some(),
            "seed {seed}: recovered state is not any batch prefix \
             ({} faults injected)",
            fault.injected_faults()
        );
        lsm.check_invariants().unwrap();
        drop(lsm);
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(opened >= 3, "sweep too hostile: only {opened} runs opened");
    // Not asserting degraded_runs > 0: the sweep's value is the prefix
    // invariant; how often degradation trips depends on the fault period.
    let _ = degraded_runs;
}

#[test]
fn gc_failures_are_counted_and_surfaced() {
    let dir = temp_dir("gc");
    // Every removal fails, forever: each snapshot's garbage sweep leaves
    // its backlog behind and must say so.
    let fault = FaultVfs::scripted(vec![Fault::permanent(
        FaultOp::Remove,
        0,
        io::ErrorKind::PermissionDenied,
    )]);
    let cfg = config_on(&dir, &fault, DurabilityConfig::new(&dir).fsync_interval(1));
    let (lsm, _) = AdmittedLsm::open_durable(device(), BATCH_SIZE, 2, cfg).unwrap();

    lsm.insert(&[(1, 10)]).unwrap();
    lsm.flush().unwrap(); // snapshot 1: tries to remove wal-0.log
    lsm.insert(&[(2, 20)]).unwrap();
    lsm.flush().unwrap(); // snapshot 2: wal-0.log *and* generation 1

    let stats = lsm.durability_stats().unwrap();
    assert_eq!(stats.snapshots, 2);
    assert!(stats.gc_failures >= 2, "failures: {}", stats.gc_failures);
    assert_eq!(
        lsm.stats().durability_gc_failures,
        stats.gc_failures,
        "surfaced through ShardedStats"
    );
    assert!(!stats.degraded, "GC trouble is not a durability loss");
    // The backlog is still on disk (nothing could be removed) and a clean
    // reopen both recovers and, on its next snapshot, drains it.
    drop(lsm);
    let (lsm, _) = AdmittedLsm::open_durable(device(), BATCH_SIZE, 2, clean_config(&dir)).unwrap();
    assert_eq!(lsm.lookup(&[1, 2]), vec![Some(10), Some(20)]);
    lsm.insert(&[(3, 30)]).unwrap();
    lsm.flush().unwrap();
    let stats = lsm.durability_stats().unwrap();
    assert_eq!(stats.gc_failures, 0, "healthy sweep reports no failures");
    drop(lsm);
    std::fs::remove_dir_all(&dir).ok();
}
