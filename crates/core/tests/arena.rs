//! Differential suite for slab-arena level storage: an LSM whose levels
//! live in arena-reserved regions must be indistinguishable, query for
//! query and byte for byte, from one whose levels own plain `Vec`s —
//! across every query surface (`lookup`, `bulk_get`, `count`, `range`,
//! `successor`, `predecessor`) and across mixed insert/delete sequences,
//! cleanup, bulk builds, and sharded splits.  The arena aliasing
//! invariants (no live-region overlap, no live region on a free list)
//! are re-checked after every batch via `check_invariants`.

use std::sync::Arc;

use gpu_lsm::{GpuLsm, LsmConfig, Op, ShardedLsm, UpdateBatch, MAX_KEY};
use gpu_sim::{Device, DeviceConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KEY_DOMAIN: u32 = 20_000;

fn device() -> Arc<Device> {
    Arc::new(Device::new(DeviceConfig::small()))
}

/// An arena-backed and a `Vec`-backed LSM built with the same batch size,
/// fed the same operations; explicit configs so the `LSM_ARENA` env knob
/// cannot flip either side.
fn pair(batch_size: usize) -> (GpuLsm, GpuLsm) {
    let arena = GpuLsm::with_config(device(), batch_size, &LsmConfig::default().arena(true))
        .expect("arena-backed LSM");
    let plain = GpuLsm::with_config(device(), batch_size, &LsmConfig::default().arena(false))
        .expect("vec-backed LSM");
    (arena, plain)
}

/// Compare every query surface of the two structures, byte for byte.
fn assert_identical_answers(arena: &GpuLsm, plain: &GpuLsm) {
    let queries: Vec<u32> = (0..KEY_DOMAIN)
        .step_by(7)
        .chain([0, 1, KEY_DOMAIN, KEY_DOMAIN + 1])
        .collect();
    assert_eq!(arena.lookup(&queries), plain.lookup(&queries));
    assert_eq!(arena.bulk_get(&queries), plain.bulk_get(&queries));
    let intervals: Vec<(u32, u32)> = vec![
        (0, KEY_DOMAIN / 4),
        (KEY_DOMAIN / 4, KEY_DOMAIN / 2),
        (KEY_DOMAIN / 2, KEY_DOMAIN),
        (0, MAX_KEY),
        (KEY_DOMAIN, 5), // inverted
        (17, 17),
    ];
    assert_eq!(arena.count(&intervals), plain.count(&intervals));
    assert_eq!(arena.range(&intervals), plain.range(&intervals));
    let points: Vec<u32> = (0..KEY_DOMAIN).step_by(311).chain([0, MAX_KEY]).collect();
    assert_eq!(arena.successor(&points), plain.successor(&points));
    assert_eq!(arena.predecessor(&points), plain.predecessor(&points));
}

fn check_both(arena: &GpuLsm, plain: &GpuLsm) {
    arena.check_invariants().expect("arena-backed invariants");
    plain.check_invariants().expect("vec-backed invariants");
}

fn random_batch(rng: &mut StdRng, b: usize, delete_frac: f64) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for _ in 0..b {
        let key = rng.gen_range(0..KEY_DOMAIN);
        if rng.gen_bool(delete_frac) {
            batch.delete(key);
        } else {
            batch.insert(key, rng.gen());
        }
    }
    batch
}

#[test]
fn arena_levels_match_vec_levels_across_batches() {
    let b = 64usize;
    let (mut arena, mut plain) = pair(b);
    let mut rng = StdRng::seed_from_u64(41);
    // 33 batches drive r through several carry chains (including the
    // 31→32 full-cascade), so regions are reserved, consumed, and
    // recycled many times over.
    for round in 0..33 {
        let batch = random_batch(&mut rng, b, 0.2);
        arena.update(&batch).unwrap();
        plain.update(&batch).unwrap();
        check_both(&arena, &plain);
        if round % 4 == 0 {
            assert_identical_answers(&arena, &plain);
        }
    }
    assert_identical_answers(&arena, &plain);
    // The arena side must actually be exercising the arena: regions were
    // handed out, and the steady-state carry chain recycled some of them.
    let stats = arena.stats().arena;
    assert!(stats.reserved_regions > 0, "arena never reserved a region");
    assert!(stats.recycled_regions > 0, "carry chain never recycled");
    assert!(stats.resident_bytes > 0);
    // The vec side must not have touched an arena at all.
    assert_eq!(plain.stats().arena, gpu_lsm::ArenaStats::default());
}

#[test]
fn arena_levels_match_after_cleanup() {
    let b = 32usize;
    let (mut arena, mut plain) = pair(b);
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..11 {
        let batch = random_batch(&mut rng, b, 0.35);
        arena.update(&batch).unwrap();
        plain.update(&batch).unwrap();
    }
    check_both(&arena, &plain);
    // Cleanup rebuilds every level from scratch: the arena side must
    // recycle the old regions and reserve fresh ones without aliasing.
    arena.cleanup();
    plain.cleanup();
    check_both(&arena, &plain);
    assert_identical_answers(&arena, &plain);
    // And the structure keeps working after the rebuild.
    for _ in 0..9 {
        let batch = random_batch(&mut rng, b, 0.2);
        arena.update(&batch).unwrap();
        plain.update(&batch).unwrap();
        check_both(&arena, &plain);
    }
    assert_identical_answers(&arena, &plain);
}

#[test]
fn arena_bulk_build_matches_vec_bulk_build() {
    let pairs: Vec<(u32, u32)> = (0..3000u32).map(|k| (k * 13 % KEY_DOMAIN, k)).collect();
    // bulk_build reads the env knob; route through update-free construction
    // by building plain and then comparing against an arena LSM fed the
    // same pairs as insert batches — plus a direct bulk_build on the
    // default config for coverage of the bulk path itself.
    let (mut arena, mut plain) = pair(128);
    for chunk in pairs.chunks(128) {
        arena.insert(chunk).unwrap();
        plain.insert(chunk).unwrap();
    }
    check_both(&arena, &plain);
    assert_identical_answers(&arena, &plain);

    let bulk = GpuLsm::bulk_build(device(), 128, &pairs).unwrap();
    bulk.check_invariants().unwrap();
    let queries: Vec<u32> = (0..KEY_DOMAIN).step_by(7).collect();
    assert_eq!(bulk.lookup(&queries), plain.lookup(&queries));
    assert_eq!(bulk.bulk_get(&queries), plain.bulk_get(&queries));
}

#[test]
fn arena_sharded_split_matches_vec_sharded() {
    let b = 32usize;
    let arena = ShardedLsm::with_config(device(), b, 2, LsmConfig::default().arena(true)).unwrap();
    let plain = ShardedLsm::with_config(device(), b, 2, LsmConfig::default().arena(false)).unwrap();
    let mut rng = StdRng::seed_from_u64(43);
    for _ in 0..10 {
        let batch = random_batch(&mut rng, b, 0.2);
        arena.update(&batch).unwrap();
        plain.update(&batch).unwrap();
    }
    // Splitting a shard rebuilds two structures from one: regions move
    // between arenas, the retired shard's storage must not leak into the
    // new ones.
    let at = arena.split_shard(0).expect("split arena shard");
    plain.split_shard_at(0, at).expect("split plain shard");
    for _ in 0..10 {
        let batch = random_batch(&mut rng, b, 0.2);
        arena.update(&batch).unwrap();
        plain.update(&batch).unwrap();
    }
    let queries: Vec<u32> = (0..KEY_DOMAIN).step_by(7).collect();
    assert_eq!(arena.lookup(&queries), plain.lookup(&queries));
    assert_eq!(arena.bulk_get(&queries), plain.bulk_get(&queries));
    let intervals: Vec<(u32, u32)> = vec![(0, KEY_DOMAIN / 2), (KEY_DOMAIN / 2, MAX_KEY)];
    assert_eq!(arena.count(&intervals), plain.count(&intervals));
    assert_eq!(arena.range(&intervals), plain.range(&intervals));
    let points: Vec<u32> = (0..KEY_DOMAIN).step_by(311).collect();
    assert_eq!(arena.successor(&points), plain.successor(&points));
    assert_eq!(arena.predecessor(&points), plain.predecessor(&points));
    // Shard-level arena stats aggregate across shards (3 after the split).
    let stats = arena.stats().arena;
    assert!(stats.reserved_regions > 0);
    assert_eq!(plain.stats().arena, gpu_lsm::ArenaStats::default());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary op sequences with arbitrary per-batch sizes: arena-backed
    /// and vec-backed answers stay identical on every surface, and the
    /// aliasing invariants hold after every batch.
    #[test]
    fn arena_differential_random_ops(
        seed in 0u64..1_000,
        rounds in 4usize..16,
        delete_pct in 0u32..60,
    ) {
        let b = 16usize;
        let (mut arena, mut plain) = pair(b);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..rounds {
            let n = rng.gen_range(1..=b);
            let mut batch = UpdateBatch::new();
            for _ in 0..n {
                let key = rng.gen_range(0..KEY_DOMAIN);
                let op = if rng.gen_range(0..100) < delete_pct {
                    Op::Delete(key)
                } else {
                    Op::Insert(key, rng.gen())
                };
                batch.push(op);
            }
            arena.update(&batch).unwrap();
            plain.update(&batch).unwrap();
            check_both(&arena, &plain);
        }
        assert_identical_answers(&arena, &plain);
    }
}
