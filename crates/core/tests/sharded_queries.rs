//! Edge cases the sharded `count` / `range` merge must preserve exactly:
//! empty intervals, inverted bounds, the full-universe query, and queries
//! whose bounds coincide with shard split points.  Every case is checked
//! against the plain [`GpuLsm`] on identical contents, at several shard
//! counts, so the fan-out/merge layer can never drift from the single
//! structure's semantics.

use std::sync::Arc;

use gpu_lsm::{GpuLsm, ShardRouter, ShardedLsm, UpdateBatch, MAX_KEY};
use gpu_sim::{Device, DeviceConfig};

fn device() -> Arc<Device> {
    Arc::new(Device::new(DeviceConfig::small()))
}

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BATCH: usize = 64;

/// Build identical contents in a plain LSM and in sharded LSMs at every
/// tested shard count: keys clustered tightly around every 8-way split
/// point (including the split points themselves), some deleted again.
fn build_all() -> (GpuLsm, Vec<ShardedLsm>) {
    let dev = device();
    let router = ShardRouter::new(8).unwrap();
    let mut batch = UpdateBatch::new();
    for &s in &router.split_points() {
        // s - 2, s - 1, s, s + 1: straddle the boundary.
        batch.insert(s - 2, s % 1000);
        batch.insert(s - 1, s % 1000 + 1);
        batch.insert(s, s % 1000 + 2);
        batch.insert(s + 1, s % 1000 + 3);
    }
    // Domain extremes.
    batch.insert(0, 11).insert(MAX_KEY, 22);
    let mut deletions = UpdateBatch::new();
    for &s in &router.split_points() {
        // Tombstone one key per boundary cluster.
        deletions.delete(s - 1);
    }

    let mut plain = GpuLsm::new(dev.clone(), BATCH).unwrap();
    plain.update(&batch).unwrap();
    plain.update(&deletions).unwrap();

    let sharded = SHARD_COUNTS
        .iter()
        .map(|&n| {
            let s = ShardedLsm::new(dev.clone(), BATCH, n).unwrap();
            s.update(&batch).unwrap();
            s.update(&deletions).unwrap();
            s.check_invariants().unwrap();
            s
        })
        .collect();
    (plain, sharded)
}

/// Assert that every sharded instance answers `queries` exactly like the
/// plain LSM (counts and full range results, offsets included).
fn assert_agreement(plain: &GpuLsm, sharded: &[ShardedLsm], queries: &[(u32, u32)], what: &str) {
    let expected_counts = plain.count(queries);
    let expected_ranges = plain.range(queries);
    // Counts and range lengths agree inside the plain structure itself.
    for (q, &c) in expected_counts.iter().enumerate() {
        assert_eq!(
            expected_ranges.len(q),
            c as usize,
            "{what}: plain count/range query {q}"
        );
    }
    for s in sharded {
        let n = s.num_shards();
        assert_eq!(
            s.count(queries),
            expected_counts,
            "{what}: counts at {n} shards"
        );
        assert_eq!(
            s.range(queries),
            expected_ranges,
            "{what}: ranges at {n} shards"
        );
    }
}

#[test]
fn empty_intervals_everywhere() {
    let (plain, sharded) = build_all();
    let router = ShardRouter::new(8).unwrap();
    let mut queries = vec![(5u32, 5u32), (1, 1), (MAX_KEY, MAX_KEY)];
    // Empty gaps away from any stored key, including gaps that span
    // boundaries but contain nothing.
    for &s in &router.split_points() {
        queries.push((s + 10, s + 10));
        queries.push((s + 2, s + 100));
    }
    assert_agreement(&plain, &sharded, &queries, "empty intervals");
    // All of these must actually be empty except boundary clusters.
    assert_eq!(plain.count(&[(5, 5)]), vec![0]);
}

#[test]
fn inverted_bounds_return_empty_not_panic() {
    let (plain, sharded) = build_all();
    let router = ShardRouter::new(8).unwrap();
    let mut queries = vec![(MAX_KEY, 0u32), (10, 5), (1, 0)];
    for &s in &router.split_points() {
        // Inverted across a boundary in both directions.
        queries.push((s + 1, s - 1));
        queries.push((s, s - 1));
    }
    let counts = plain.count(&queries);
    assert!(
        counts.iter().all(|&c| c == 0),
        "inverted bounds count nothing"
    );
    let ranges = plain.range(&queries);
    assert_eq!(ranges.total_len(), 0);
    assert_agreement(&plain, &sharded, &queries, "inverted bounds");
}

#[test]
fn full_universe_query_sees_everything_once() {
    let (plain, sharded) = build_all();
    let queries = [(0u32, MAX_KEY)];
    // 7 boundary clusters of 4 keys each, one deleted per cluster, plus the
    // two extremes: 7 * 3 + 2 valid keys.
    assert_eq!(plain.count(&queries), vec![7 * 3 + 2]);
    assert_agreement(&plain, &sharded, &queries, "full universe");
    // The concatenated full-universe range is globally key-sorted.
    for s in &sharded {
        let r = s.range(&queries);
        let (keys, _) = r.query(0);
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "sorted, distinct keys"
        );
    }
}

#[test]
fn bounds_equal_to_split_points() {
    let (plain, sharded) = build_all();
    let router = ShardRouter::new(8).unwrap();
    let mut queries = Vec::new();
    for &s in &router.split_points() {
        queries.push((s, s)); // the split point alone
        queries.push((s - 2, s)); // upper bound on the boundary
        queries.push((s, s + 1)); // lower bound on the boundary
        queries.push((s - 2, s + 1)); // straddling, both clusters
    }
    // Also every pair of *adjacent* split points (a whole shard, inclusive).
    let splits = router.split_points();
    for w in splits.windows(2) {
        queries.push((w[0], w[1]));
        queries.push((w[0], w[1] - 1));
    }
    assert_agreement(&plain, &sharded, &queries, "split-point bounds");
    // Spot-check one straddling query by hand: s-2 (present), s-1
    // (deleted), s (present), s+1 (present).
    let s = splits[0];
    assert_eq!(plain.count(&[(s - 2, s + 1)]), vec![3]);
}

#[test]
fn lookups_and_order_queries_on_split_points() {
    let (plain, sharded) = build_all();
    let router = ShardRouter::new(8).unwrap();
    let mut keys = vec![0u32, MAX_KEY];
    for &s in &router.split_points() {
        keys.extend_from_slice(&[s - 2, s - 1, s, s + 1]);
    }
    let expected = plain.lookup(&keys);
    let expected_succ = plain.successor(&keys);
    let expected_pred = plain.predecessor(&keys);
    for s in &sharded {
        let n = s.num_shards();
        assert_eq!(s.lookup(&keys), expected, "lookups at {n} shards");
        assert_eq!(
            s.successor(&keys),
            expected_succ,
            "successors at {n} shards"
        );
        assert_eq!(
            s.predecessor(&keys),
            expected_pred,
            "predecessors at {n} shards"
        );
    }
    // The deleted boundary neighbour reads as absent; the split point reads
    // through to its value.
    let sp = router.split_points()[3];
    assert_eq!(plain.lookup(&[sp - 1]), vec![None]);
    assert!(plain.lookup(&[sp])[0].is_some());
}

#[test]
fn out_of_domain_bounds_agree_between_plain_and_sharded() {
    // Bounds above MAX_KEY cannot contain a storable key; every backend
    // must treat them identically instead of letting `k << 1` wrap.
    let (plain, sharded) = build_all();
    let queries = vec![
        (MAX_KEY + 1, u32::MAX), // entirely above the domain: empty
        (u32::MAX, u32::MAX),
        (0, u32::MAX),       // upper bound clamps to MAX_KEY
        (MAX_KEY, u32::MAX), // exactly the domain's top key
        (u32::MAX, 0),       // inverted and out of domain
    ];
    assert_eq!(plain.count(&queries), vec![0, 0, 7 * 3 + 2, 1, 0]);
    assert_agreement(&plain, &sharded, &queries, "out-of-domain bounds");

    // Order queries beyond the domain: no successor exists; the
    // predecessor is the largest valid key (MAX_KEY here, it is live).
    let probes = [MAX_KEY, MAX_KEY + 1, u32::MAX];
    assert_eq!(plain.successor(&probes), vec![None, None, None]);
    let pred = plain.predecessor(&[MAX_KEY + 1, u32::MAX]);
    assert_eq!(pred, vec![Some((MAX_KEY, 22)), Some((MAX_KEY, 22))]);
    for s in &sharded {
        let n = s.num_shards();
        assert_eq!(s.successor(&probes), plain.successor(&probes), "{n} shards");
        assert_eq!(s.predecessor(&[MAX_KEY + 1, u32::MAX]), pred, "{n} shards");
        // Lookups beyond the domain miss everywhere.
        assert_eq!(s.lookup(&[MAX_KEY + 1, u32::MAX]), vec![None, None]);
    }
}

#[test]
fn cleanup_preserves_every_edge_case_answer() {
    let (mut plain, sharded) = build_all();
    let router = ShardRouter::new(8).unwrap();
    let mut queries = vec![(0, MAX_KEY), (MAX_KEY, 0)];
    for &s in &router.split_points() {
        queries.push((s, s));
        queries.push((s - 2, s + 1));
    }
    let before_counts = plain.count(&queries);
    let before_ranges = plain.range(&queries);
    plain.cleanup();
    assert_eq!(plain.count(&queries), before_counts);
    assert_eq!(plain.range(&queries), before_ranges);
    for s in &sharded {
        s.cleanup();
        s.check_invariants().unwrap();
        assert_eq!(
            s.count(&queries),
            before_counts,
            "{} shards",
            s.num_shards()
        );
        assert_eq!(
            s.range(&queries),
            before_ranges,
            "{} shards",
            s.num_shards()
        );
    }
}
