//! Counting-allocator proof that the steady-state carry-chain merge inner
//! loop performs **zero heap allocations**: once the arena's free lists
//! hold every region size class a carry chain needs, reservation recycles
//! spans and the merge writes straight into them.
//!
//! The global allocator below counts every allocation made while the
//! thread-local merge scope (see `gpu_lsm::alloc_scope`) is active.  The
//! merge is forced sequential (cutoff override), so the whole inner loop
//! runs on the test thread and the thread-local flag observes all of it.
//! This file holds exactly one test: the counters are process-global, and
//! a sibling test merging on another thread would pollute them.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gpu_lsm::{GpuLsm, LsmConfig, UpdateBatch};
use gpu_sim::{Device, DeviceConfig};

/// Allocations observed while the merge scope was active.
static IN_SCOPE_ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

impl CountingAlloc {
    fn note(&self) {
        // The scope flag is a const-initialized thread-local `Cell`, so
        // reading it never allocates (no re-entrancy).
        if gpu_lsm::alloc_scope::merge_scope_active() {
            IN_SCOPE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.note();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.note();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.note();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_carry_merges_allocate_nothing() {
    // Force the merge fully sequential so the thread-local scope flag on
    // this thread covers the entire inner loop.
    rayon::set_sequential_cutoff(usize::MAX);

    let device = Arc::new(Device::new(DeviceConfig::small()));
    let b = 256usize;
    let config = LsmConfig::default().arena(true);
    let mut lsm = GpuLsm::with_config(device, b, &config).unwrap();

    let batch_at = |round: usize| {
        let mut batch = UpdateBatch::new();
        for j in 0..b {
            let key = ((round * b + j) as u32).wrapping_mul(2_654_435_761) % 1_000_000;
            batch.insert(key, round as u32);
        }
        batch
    };

    // Warm-up: 16 batches drive r to 16, so the arena has reserved (and
    // recycled) every region class up to 16·b.  The fresh chunk
    // allocations land in-scope here — which also proves the counter
    // instrumentation is live.
    for round in 0..16 {
        lsm.update(&batch_at(round)).unwrap();
    }
    let warmup = IN_SCOPE_ALLOCS.load(Ordering::Relaxed);
    assert!(
        warmup > 0,
        "warm-up merges never allocated in scope — the counter is not observing the merge loop"
    );

    // Steady state: updates 17..=31 re-run carry chains over region
    // classes the free lists already hold (2b, 4b, 8b — the next fresh
    // class, 32b, is only needed at update 32).  Not one allocation may
    // land inside the merge scope.
    for round in 16..31 {
        lsm.update(&batch_at(round)).unwrap();
    }
    let steady = IN_SCOPE_ALLOCS.load(Ordering::Relaxed) - warmup;
    assert_eq!(
        steady, 0,
        "steady-state carry merges performed {steady} heap allocations in the merge inner loop"
    );

    // The structure still answers queries (the allocator stayed in place
    // for them — only the merge scope must be allocation-free).
    let hits = lsm.lookup(&[2_654_435_761u32 % 1_000_000]);
    assert_eq!(hits.len(), 1);
    let stats = lsm.stats().arena;
    assert!(stats.recycled_regions > 0, "steady state never recycled");
    rayon::set_sequential_cutoff(0);
}
