//! Differential suite for the planner/executor write path: acceleration
//! structures maintained *incrementally* across carry-chain merges must be
//! semantically identical to structures rebuilt from scratch — fence
//! searches return the very same indices a rebuilt (or un-fenced) search
//! would, filters never produce a false negative — and the merge counters
//! must prove the incremental path is actually the one taken.
//!
//! The carry-chain filter threshold and the filter sizing are process-global
//! knobs, so the tests that force them serialise on a mutex and restore the
//! defaults on drop (same pattern as `query_accel.rs`).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use gpu_lsm::level::set_carry_filter_min_len_override;
use gpu_lsm::{GpuLsm, Op, UpdateBatch};
use gpu_primitives::filter::{set_bloom_bits_override, DEFAULT_BITS_PER_KEY};
use gpu_sim::{Device, DeviceConfig};
use proptest::prelude::*;

fn device() -> Arc<Device> {
    Arc::new(Device::new(DeviceConfig::small()))
}

/// Serialises the tests that flip process-global overrides and restores
/// the defaults on drop.
struct OverrideGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl OverrideGuard {
    fn lock() -> Self {
        static GATE: Mutex<()> = Mutex::new(());
        OverrideGuard(GATE.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        set_bloom_bits_override(None);
        set_carry_filter_min_len_override(None);
    }
}

/// Assert that every occupied level's incrementally maintained structures
/// answer exactly like structures rebuilt from the level's key array:
/// identical lower/upper bounds for a dense probe set (the "identical
/// search windows" property — the narrowed searches land on the very same
/// indices), exact min/max, and no filter false negatives.
fn assert_aux_matches_rebuilt(lsm: &GpuLsm) {
    for (i, level) in lsm.levels().iter_occupied() {
        let originals: Vec<u32> = level.keys().iter().map(|&k| k >> 1).collect();
        let lo = originals[0];
        let hi = originals[originals.len() - 1];
        let probes = (lo.saturating_sub(2)..=hi.saturating_add(2))
            .step_by(1.max((hi as usize - lo as usize) / 512))
            .chain([0, u32::MAX >> 1]);
        for q in probes {
            assert_eq!(
                level.lower_bound(q),
                originals.partition_point(|&k| k < q),
                "level {i} lower_bound({q})"
            );
            assert_eq!(
                level.upper_bound(q),
                originals.partition_point(|&k| k <= q),
                "level {i} upper_bound({q})"
            );
        }
        assert_eq!(level.min_key(), lo, "level {i} min");
        assert_eq!(level.max_key(), hi, "level {i} max");
        if let Some(filter) = level.filter() {
            for &k in &originals {
                assert!(
                    filter.contains(k),
                    "level {i}: filter false negative for resident key {k}"
                );
            }
        }
    }
    lsm.check_invariants().expect("structural invariants");
}

/// A mixed batch with distinct keys (order-independent semantics, so the
/// BTreeMap reference model is exact).
fn arb_batch(batch_size: usize, key_domain: u32) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::btree_map(0..key_domain, (any::<bool>(), any::<u32>()), 1..=batch_size)
        .prop_map(|m| {
            m.into_iter()
                .map(|(k, (is_delete, v))| {
                    if is_delete {
                        Op::Delete(k)
                    } else {
                        Op::Insert(k, v)
                    }
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Drive a structure through enough batches for multi-step carries and
    /// check after every batch that the merged fences/filters are
    /// semantically identical to rebuilt ones, and the structure agrees
    /// with a reference model.
    #[test]
    fn prop_incremental_aux_is_semantically_identical(
        batches in proptest::collection::vec(arb_batch(48, 4_000), 5..14)
    ) {
        let mut lsm = GpuLsm::new(device(), 48).unwrap();
        let mut model: BTreeMap<u32, Option<u32>> = BTreeMap::new();
        for ops in &batches {
            let mut batch = UpdateBatch::new();
            for op in ops {
                batch.push(*op);
                match *op {
                    Op::Insert(k, v) => { model.insert(k, Some(v)); }
                    Op::Delete(k) => { model.insert(k, None); }
                }
            }
            lsm.update(&batch).unwrap();
            assert_aux_matches_rebuilt(&lsm);
        }
        let queries: Vec<u32> = (0..4_000).step_by(7).collect();
        let expected: Vec<Option<u32>> = queries
            .iter()
            .map(|k| model.get(k).copied().flatten())
            .collect();
        prop_assert_eq!(lsm.lookup(&queries), expected);
        // The carry chain ran and took the incremental fence path.
        let merges = lsm.stats().merges;
        prop_assert!(merges.carry_merge_steps > 0);
        prop_assert!(merges.fence_merges > 0);
        prop_assert_eq!(
            merges.fence_merges + merges.fence_rebuilds,
            merges.carry_merge_steps
        );
    }
}

#[test]
fn deep_carry_chains_stay_exact_and_respect_the_window_guard() {
    // 64 batches of 64: carries up to depth 6.  Fence merging widens the
    // worst-case window each step; the executor must either keep it under
    // the guard or rebuild — so no resident level may ever carry a window
    // wider than the guard, and the bounds must stay exact throughout.
    let mut lsm = GpuLsm::new(device(), 64).unwrap();
    for b in 0..64u32 {
        let pairs: Vec<(u32, u32)> = (0..64u32).map(|i| ((i * 131 + b * 7) % 4096, b)).collect();
        let mut batch = UpdateBatch::new();
        let mut seen = std::collections::HashSet::new();
        for (k, v) in pairs {
            if seen.insert(k) {
                batch.insert(k, v);
            }
        }
        lsm.update(&batch).unwrap();
        assert_aux_matches_rebuilt(&lsm);
        for (i, level) in lsm.levels().iter_occupied() {
            let fences = level.fences().expect("every level carries fences");
            assert!(
                fences.max_window() <= gpu_lsm::compaction::FENCE_MERGE_MAX_WINDOW,
                "level {i} window {} exceeds the merge guard",
                fences.max_window()
            );
        }
    }
    let merges = lsm.stats().merges;
    assert_eq!(merges.carry_merge_steps, 63); // Σ carry depths for r = 1..=64
    assert!(merges.fence_merges > 0, "shallow carries merge fences");
    assert_eq!(merges.fence_merges + merges.fence_rebuilds, 63);
}

#[test]
fn incremental_filter_maintenance_is_taken_and_exact() {
    let _guard = OverrideGuard::lock();
    set_bloom_bits_override(Some(DEFAULT_BITS_PER_KEY));
    // Force carry-chain levels to build filters from 128 elements up, so
    // the final merge step of every deep-enough carry re-uses the consumed
    // level's filter instead of rebuilding.
    set_carry_filter_min_len_override(Some(128));

    let mut lsm = GpuLsm::new(device(), 128).unwrap();
    let mut model: BTreeMap<u32, u32> = BTreeMap::new();
    for b in 0..16u32 {
        let pairs: Vec<(u32, u32)> = (0..128u32)
            .map(|i| ((b * 997 + i * 13) % 60_000, b * 1000 + i))
            .collect();
        let mut batch = UpdateBatch::new();
        let mut seen = std::collections::HashSet::new();
        for (k, v) in pairs {
            if seen.insert(k) {
                batch.insert(k, v);
                model.insert(k, v);
            }
        }
        lsm.update(&batch).unwrap();
        assert_aux_matches_rebuilt(&lsm);
    }
    let merges = lsm.stats().merges;
    // The planner asked for filters on every carry output (>= 128
    // elements); the incremental path (one-sided re-hash of the buffer's
    // keys into the consumed level's filter) must have produced at least
    // some of them.
    assert!(
        merges.filter_rehashes > 0,
        "incremental filter path never taken: {merges:?}"
    );
    assert!(
        merges.incremental_events() > merges.filter_rebuilds,
        "incremental maintenance should dominate rebuilds: {merges:?}"
    );
    // And the filtered structure still answers exactly.
    let queries: Vec<u32> = (0..60_000).step_by(31).collect();
    let expected: Vec<Option<u32>> = queries.iter().map(|k| model.get(k).copied()).collect();
    assert_eq!(lsm.lookup_individual(&queries), expected);
    assert_eq!(lsm.lookup_bulk_sorted(&queries), expected);
}

#[test]
fn planner_decides_filters_before_data_moves() {
    let _guard = OverrideGuard::lock();
    set_bloom_bits_override(Some(DEFAULT_BITS_PER_KEY));
    set_carry_filter_min_len_override(Some(256));

    let mut lsm = GpuLsm::new(device(), 128).unwrap();
    // First batch lands at level 0 (128 < 256): plan says no filter.
    let plan = lsm.plan_next_insert();
    assert!(!plan.build_filter);
    assert_eq!(plan.output_len, 128);
    lsm.insert(&(0..128u32).map(|k| (k, k)).collect::<Vec<_>>())
        .unwrap();
    assert!(lsm.levels().get(0).unwrap().filter().is_none());
    // Second batch merges into level 1 (256 >= 256): plan wants a filter
    // and the executor must deliver one.
    let plan = lsm.plan_next_insert();
    assert!(plan.build_filter);
    assert_eq!(plan.target_level, 1);
    assert_eq!(plan.output_len, 256);
    lsm.insert(&(128..256u32).map(|k| (k, k)).collect::<Vec<_>>())
        .unwrap();
    let level = lsm.levels().get(1).unwrap();
    assert!(level.filter().is_some());
    // No filter inputs existed, so this one was a counted rebuild.
    assert_eq!(lsm.stats().merges.filter_rebuilds, 1);
}
