//! Differential suite for the log-bucketed latency histogram: quantiles
//! must track a sorted-reference implementation within the documented
//! 1/32 relative quantization bound on adversarial distributions, and
//! merging histograms must be exactly associative and commutative (the
//! property the per-thread record-then-fold workflow rests on).

use gpu_lsm::LatencyHistogram;
use proptest::prelude::*;

/// Reference quantile: the same rank convention the histogram documents —
/// the smallest sample `v` such that at least `ceil(q · n)` samples are
/// `<= v`.
fn reference_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[target - 1]
}

/// The histogram answer must bracket the reference from above, within one
/// conservative bucket edge (≤ 1/32 relative) and never past the maximum.
fn assert_quantile_close(h: &LatencyHistogram, sorted: &[u64], q: f64) {
    let reference = reference_quantile(sorted, q);
    let got = h.value_at_quantile(q);
    assert!(
        got >= reference,
        "q={q}: histogram {got} under-reports reference {reference}"
    );
    let bound = reference.saturating_add(reference / 32).saturating_add(1);
    let max = *sorted.last().unwrap();
    assert!(
        got <= bound.min(max.max(reference)),
        "q={q}: histogram {got} exceeds bound {bound} (reference {reference}, max {max})"
    );
}

fn histogram_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

const QUANTILES: [f64; 7] = [0.0, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0];

#[test]
fn quantiles_match_reference_on_adversarial_distributions() {
    let cases: Vec<Vec<u64>> = vec![
        // Single sample.
        vec![42],
        // All equal, small and large magnitudes.
        vec![7; 1000],
        vec![123_456_789; 1000],
        // Bimodal: a tight fast mode and a far tail.
        (0..990)
            .map(|_| 1_000u64)
            .chain((0..10).map(|_| 5_000_000u64))
            .collect(),
        // Extreme bimodal: zeros and u64::MAX.
        (0..99).map(|_| 0u64).chain([u64::MAX]).collect(),
        // Uniform ramp and a geometric spread crossing many octaves.
        (0..10_000u64).collect(),
        (0..63).map(|s| 1u64 << s).collect(),
    ];
    for samples in cases {
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let h = histogram_of(&samples);
        assert_eq!(h.count(), samples.len() as u64);
        assert_eq!(h.min(), sorted[0]);
        assert_eq!(h.max(), *sorted.last().unwrap());
        for q in QUANTILES {
            assert_quantile_close(&h, &sorted, q);
        }
        // Percentile accessors are ordered.
        assert!(h.p50() <= h.p99());
        assert!(h.p99() <= h.p999());
        assert!(h.p999() <= h.max());
    }
}

#[test]
fn all_equal_distribution_is_reported_exactly() {
    for value in [0u64, 1, 63, 64, 65, 1_000_000, u64::MAX] {
        let mut h = LatencyHistogram::new();
        h.record_n(value, 10_000);
        for q in QUANTILES {
            assert_eq!(h.value_at_quantile(q), value, "value {value} q {q}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random samples spanning nine orders of magnitude: every quantile
    /// stays within the documented bound of the sorted reference.
    #[test]
    fn quantiles_track_sorted_reference(
        samples in proptest::collection::vec(0u64..1_000_000_000, 1..500)
    ) {
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let h = histogram_of(&samples);
        for q in QUANTILES {
            assert_quantile_close(&h, &sorted, q);
        }
        // The mean is exact (tracked outside the buckets).
        let exact: u128 = samples.iter().map(|&s| s as u128).sum();
        let expected = exact as f64 / samples.len() as f64;
        prop_assert!((h.mean() - expected).abs() <= expected * 1e-12 + 1e-9);
    }

    /// Merging is associative and commutative, and merged quantiles equal
    /// the quantiles of recording everything into one histogram.
    #[test]
    fn merge_is_associative_and_order_free(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        c in proptest::collection::vec(0u64..1_000_000_000, 0..200),
    ) {
        let (ha, hb, hc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));

        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut right_inner = hb.clone();
        right_inner.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);

        // c ⊕ b ⊕ a (commutativity)
        let mut rev = hc.clone();
        rev.merge(&hb);
        rev.merge(&ha);
        prop_assert_eq!(&left, &rev);

        // Equal to one histogram fed every sample directly.
        let combined: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &histogram_of(&combined));
        prop_assert_eq!(left.count(), combined.len() as u64);
    }
}
