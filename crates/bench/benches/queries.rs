//! Criterion micro-benchmarks for the retrieval operations (Tables III and
//! IV building blocks): lookups, counts and range queries on the GPU LSM,
//! the sorted array and the cuckoo hash table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_baselines::{CuckooHashTable, SortedArray};
use gpu_lsm::GpuLsm;
use lsm_bench::experiments::experiment_device;
use lsm_workloads::{
    existing_lookups, missing_lookups, range_queries_with_expected_width, unique_random_pairs,
};

const N: usize = 1 << 17;
const BATCH: usize = 1 << 13;
const QUERIES: usize = 1 << 14;

struct Fixtures {
    lsm: GpuLsm,
    sa: SortedArray,
    cuckoo: CuckooHashTable,
    existing: Vec<u32>,
    missing: Vec<u32>,
}

fn fixtures() -> Fixtures {
    let pairs = unique_random_pairs(N, 42);
    let keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
    let device = experiment_device();
    Fixtures {
        lsm: GpuLsm::bulk_build(device.clone(), BATCH, &pairs[..N - BATCH / 2]).unwrap(),
        sa: SortedArray::bulk_build(device.clone(), &pairs[..N - BATCH / 2]),
        cuckoo: CuckooHashTable::bulk_build(device, &pairs[..N - BATCH / 2]),
        existing: existing_lookups(&keys[..N - BATCH / 2], QUERIES, 1),
        missing: missing_lookups(&keys, QUERIES, 2),
    }
}

fn bench_lookup(c: &mut Criterion) {
    let f = fixtures();
    let mut group = c.benchmark_group("lookup");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(QUERIES as u64));
    group.bench_function("lsm_all_exist", |b| b.iter(|| f.lsm.lookup(&f.existing)));
    group.bench_function("lsm_none_exist", |b| b.iter(|| f.lsm.lookup(&f.missing)));
    group.bench_function("sa_all_exist", |b| b.iter(|| f.sa.lookup(&f.existing)));
    group.bench_function("sa_none_exist", |b| b.iter(|| f.sa.lookup(&f.missing)));
    group.bench_function("cuckoo_all_exist", |b| {
        b.iter(|| f.cuckoo.lookup(&f.existing))
    });
    group.bench_function("cuckoo_none_exist", |b| {
        b.iter(|| f.cuckoo.lookup(&f.missing))
    });
    group.finish();
}

fn bench_count_and_range(c: &mut Criterion) {
    let f = fixtures();
    let num_queries = 1 << 11;
    let mut group = c.benchmark_group("count_range");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(num_queries as u64));
    for l in [8usize, 1024] {
        let queries = range_queries_with_expected_width(N - BATCH / 2, l, num_queries, l as u64);
        group.bench_with_input(BenchmarkId::new("lsm_count", l), &queries, |b, q| {
            b.iter(|| f.lsm.count(q))
        });
        group.bench_with_input(BenchmarkId::new("lsm_range", l), &queries, |b, q| {
            b.iter(|| f.lsm.range(q))
        });
        group.bench_with_input(BenchmarkId::new("sa_count", l), &queries, |b, q| {
            b.iter(|| f.sa.count(q))
        });
        group.bench_with_input(BenchmarkId::new("sa_range", l), &queries, |b, q| {
            b.iter(|| f.sa.range(q))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_count_and_range);
criterion_main!(benches);
