//! Criterion micro-benchmarks for the update path (Table II / Fig. 4
//! building blocks): batch insertion into the GPU LSM at several resident
//! sizes, the sorted-array merge insert, mixed insert/delete batches, and
//! bulk builds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_baselines::SortedArray;
use gpu_lsm::GpuLsm;
use lsm_bench::experiments::experiment_device;
use lsm_workloads::{mixed_batches, unique_random_pairs};

const BATCH: usize = 1 << 13;

fn bench_lsm_batch_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsm_batch_insert");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(BATCH as u64));
    for resident_batches in [1usize, 7, 31] {
        let pairs = unique_random_pairs(BATCH * (resident_batches + 1), 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(resident_batches),
            &resident_batches,
            |bencher, &r| {
                bencher.iter_batched(
                    || {
                        let device = experiment_device();
                        let lsm = GpuLsm::bulk_build(device, BATCH, &pairs[..r * BATCH]).unwrap();
                        (lsm, pairs[r * BATCH..(r + 1) * BATCH].to_vec())
                    },
                    |(mut lsm, batch)| lsm.insert(&batch).unwrap(),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_sa_batch_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("sa_batch_insert");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(BATCH as u64));
    for resident_batches in [1usize, 7, 31] {
        let pairs = unique_random_pairs(BATCH * (resident_batches + 1), 8);
        group.bench_with_input(
            BenchmarkId::from_parameter(resident_batches),
            &resident_batches,
            |bencher, &r| {
                bencher.iter_batched(
                    || {
                        let device = experiment_device();
                        let sa = SortedArray::bulk_build(device, &pairs[..r * BATCH]);
                        (sa, pairs[r * BATCH..(r + 1) * BATCH].to_vec())
                    },
                    |(mut sa, batch)| sa.insert_batch(&batch),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_mixed_update_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsm_mixed_update");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(BATCH as u64));
    let seq = mixed_batches(BATCH, 8, 0.3, 9);
    group.bench_function("30pct_deletes", |bencher| {
        bencher.iter_batched(
            || {
                let device = experiment_device();
                let mut lsm = GpuLsm::new(device, BATCH).unwrap();
                for b in &seq.batches[..7] {
                    lsm.update(b).unwrap();
                }
                lsm
            },
            |mut lsm| lsm.update(&seq.batches[7]).unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_bulk_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk_build");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 1 << 17;
    group.throughput(Throughput::Elements(n as u64));
    let pairs = unique_random_pairs(n, 10);
    group.bench_function("gpu_lsm", |bencher| {
        bencher.iter(|| GpuLsm::bulk_build(experiment_device(), BATCH, &pairs).unwrap());
    });
    group.bench_function("sorted_array", |bencher| {
        bencher.iter(|| SortedArray::bulk_build(experiment_device(), &pairs));
    });
    group.bench_function("cuckoo_hash", |bencher| {
        bencher.iter(|| gpu_baselines::CuckooHashTable::bulk_build(experiment_device(), &pairs));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lsm_batch_insert,
    bench_sa_batch_insert,
    bench_mixed_update_batch,
    bench_bulk_build
);
criterion_main!(benches);
