//! Criterion micro-benchmarks for the substrate primitives (the CUB /
//! moderngpu stand-ins): radix sort, merge, scan, segmented sort, compaction
//! and multisplit.  These are the building blocks whose rates bound every
//! number in the paper's tables (e.g. the 770 M elements/s radix sort quoted
//! in §V-B).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpu_primitives::{
    compact::compact_by_flag, merge::merge_by, multisplit::multisplit_in_place,
    radix_sort::sort_pairs, scan::exclusive_scan, segmented_sort::segmented_sort_keys_by,
};
use lsm_bench::experiments::experiment_device;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 1 << 18;

fn bench_radix_sort(c: &mut Criterion) {
    let device = experiment_device();
    let mut rng = StdRng::seed_from_u64(1);
    let keys: Vec<u32> = (0..N).map(|_| rng.gen()).collect();
    let values: Vec<u32> = (0..N as u32).collect();
    let mut group = c.benchmark_group("radix_sort");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("sort_pairs", |b| {
        b.iter_batched(
            || (keys.clone(), values.clone()),
            |(mut k, mut v)| sort_pairs(&device, &mut k, &mut v),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let device = experiment_device();
    let mut rng = StdRng::seed_from_u64(2);
    let mut a: Vec<u32> = (0..N).map(|_| rng.gen()).collect();
    let mut b_side: Vec<u32> = (0..N).map(|_| rng.gen()).collect();
    a.sort_unstable();
    b_side.sort_unstable();
    let mut group = c.benchmark_group("merge");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(2 * N as u64));
    group.bench_function("merge_keys", |bench| {
        bench.iter(|| merge_by(&device, &a, &b_side, |x, y| x < y))
    });
    group.finish();
}

fn bench_scan_compact_multisplit(c: &mut Criterion) {
    let device = experiment_device();
    let data: Vec<u64> = (0..N as u64).collect();
    let keys: Vec<u32> = (0..N as u32).collect();
    let flags: Vec<bool> = (0..N).map(|i| i % 3 == 0).collect();
    let mut group = c.benchmark_group("scan_compact_multisplit");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("exclusive_scan", |b| {
        b.iter(|| exclusive_scan(&device, &data))
    });
    group.bench_function("compact_by_flag", |b| {
        b.iter(|| compact_by_flag(&device, &keys, &flags))
    });
    group.bench_function("multisplit", |b| {
        b.iter_batched(
            || keys.clone(),
            |mut k| multisplit_in_place(&device, &mut k, |x| x % 2 == 0),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_segmented_sort(c: &mut Criterion) {
    let device = experiment_device();
    let mut rng = StdRng::seed_from_u64(3);
    let num_segments = 1 << 10;
    let seg_len = 64;
    let keys: Vec<u32> = (0..num_segments * seg_len).map(|_| rng.gen()).collect();
    let offsets: Vec<usize> = (0..=num_segments).map(|i| i * seg_len).collect();
    let mut group = c.benchmark_group("segmented_sort");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements((num_segments * seg_len) as u64));
    group.bench_function("1024_segments_of_64", |b| {
        b.iter_batched(
            || keys.clone(),
            |mut k| segmented_sort_keys_by(&device, &mut k, &offsets, |a, b| a < b),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_radix_sort,
    bench_merge,
    bench_scan_compact_multisplit,
    bench_segmented_sort
);
criterion_main!(benches);
