//! Criterion micro-benchmarks for the cleanup operation (§V-D): cleanup at
//! different stale fractions, compared with rebuilding from scratch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_lsm::GpuLsm;
use lsm_bench::experiments::experiment_device;
use lsm_workloads::mixed_batches;

const BATCH: usize = 1 << 12;
const NUM_BATCHES: usize = 31;

fn dirty_lsm(delete_fraction: f64) -> GpuLsm {
    let seq = mixed_batches(BATCH, NUM_BATCHES, delete_fraction, 77);
    let mut lsm = GpuLsm::new(experiment_device(), BATCH).unwrap();
    for b in &seq.batches {
        lsm.update(b).unwrap();
    }
    lsm
}

fn bench_cleanup(c: &mut Criterion) {
    let mut group = c.benchmark_group("cleanup");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements((BATCH * NUM_BATCHES) as u64));
    for delete_fraction in [0.1f64, 0.5] {
        group.bench_with_input(
            BenchmarkId::new("cleanup", format!("{:.0}pct", delete_fraction * 100.0)),
            &delete_fraction,
            |bencher, &df| {
                bencher.iter_batched(
                    || dirty_lsm(df),
                    |mut lsm| lsm.cleanup(),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    // Rebuild-from-scratch comparison at the same size.
    let pairs = lsm_workloads::unique_random_pairs(BATCH * NUM_BATCHES, 78);
    group.bench_function("rebuild_from_scratch", |bencher| {
        bencher.iter(|| GpuLsm::bulk_build(experiment_device(), BATCH, &pairs).unwrap());
    });
    group.finish();
}

fn bench_queries_dirty_vs_clean(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_dirty_vs_clean");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let queries: Vec<u32> = (0..1u32 << 14).map(|i| i * 31).collect();
    group.throughput(Throughput::Elements(queries.len() as u64));
    let dirty = dirty_lsm(0.4);
    let mut clean = dirty.clone();
    clean.cleanup();
    group.bench_function("dirty", |b| b.iter(|| dirty.lookup(&queries)));
    group.bench_function("clean", |b| b.iter(|| clean.lookup(&queries)));
    group.finish();
}

criterion_group!(benches, bench_cleanup, bench_queries_dirty_vs_clean);
criterion_main!(benches);
