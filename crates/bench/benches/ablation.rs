//! Ablation benchmarks for design choices called out in DESIGN.md:
//!
//! * **Status bit in the key LSB** (paper §IV-A) versus keeping a separate
//!   flag array: the encoded form sorts and merges a single 32-bit stream,
//!   the split form must move two streams and consult both.
//! * **Merge-based insertion** versus **re-sorting the whole array** for the
//!   sorted-array baseline (the two update strategies §V-A mentions).
//! * **Key-only versus key–value merges**: the cost of moving values along
//!   with their keys in the LSM's carry chain.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpu_baselines::SortedArray;
use gpu_primitives::{merge::merge_by, merge::merge_pairs_by, radix_sort};
use lsm_bench::experiments::experiment_device;
use lsm_workloads::unique_random_pairs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 1 << 17;

/// Encoded representation: status bit packed into the key LSB.
fn bench_status_bit_encoding(c: &mut Criterion) {
    let device = experiment_device();
    let mut rng = StdRng::seed_from_u64(5);
    let keys: Vec<u32> = (0..N).map(|_| rng.gen::<u32>() >> 1).collect();
    let flags: Vec<bool> = (0..N).map(|i| i % 10 != 0).collect();
    let values: Vec<u32> = (0..N as u32).collect();

    let mut group = c.benchmark_group("ablation_status_bit");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(N as u64));

    // Packed: sort one key stream whose LSB is the status bit.
    group.bench_function("packed_lsb_sort", |b| {
        b.iter_batched(
            || {
                let packed: Vec<u32> = keys
                    .iter()
                    .zip(flags.iter())
                    .map(|(&k, &f)| (k << 1) | f as u32)
                    .collect();
                (packed, values.clone())
            },
            |(mut k, mut v)| radix_sort::sort_pairs(&device, &mut k, &mut v),
            criterion::BatchSize::LargeInput,
        )
    });

    // Split: sort the key stream and carry the flags as a second value
    // stream (so two pair sorts' worth of data movement).
    group.bench_function("separate_flag_array_sort", |b| {
        b.iter_batched(
            || {
                let flag_words: Vec<u32> = flags.iter().map(|&f| f as u32).collect();
                (keys.clone(), values.clone(), flag_words)
            },
            |(mut k, mut v, mut fw)| {
                let mut k2 = k.clone();
                radix_sort::sort_pairs(&device, &mut k, &mut v);
                radix_sort::sort_pairs(&device, &mut k2, &mut fw);
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// SA insertion strategies: merge versus full re-sort.
fn bench_sa_merge_vs_resort(c: &mut Criterion) {
    let pairs = unique_random_pairs(N, 6);
    let batch = unique_random_pairs(N / 16, 7);
    let mut group = c.benchmark_group("ablation_sa_insert");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements((N / 16) as u64));
    group.bench_function("merge_insert", |b| {
        b.iter_batched(
            || SortedArray::bulk_build(experiment_device(), &pairs),
            |mut sa| sa.insert_batch(&batch),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("resort_insert", |b| {
        b.iter_batched(
            || SortedArray::bulk_build(experiment_device(), &pairs),
            |mut sa| sa.insert_batch_resort(&batch),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Key-only versus key–value merge cost.
fn bench_keys_vs_pairs_merge(c: &mut Criterion) {
    let device = experiment_device();
    let mut rng = StdRng::seed_from_u64(8);
    let mut a: Vec<u32> = (0..N).map(|_| rng.gen()).collect();
    let mut b_keys: Vec<u32> = (0..N).map(|_| rng.gen()).collect();
    a.sort_unstable();
    b_keys.sort_unstable();
    let vals: Vec<u32> = (0..N as u32).collect();

    let mut group = c.benchmark_group("ablation_merge_payload");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(2 * N as u64));
    group.bench_function("keys_only", |bench| {
        bench.iter(|| merge_by(&device, &a, &b_keys, |x, y| x < y))
    });
    group.bench_function("key_value_pairs", |bench| {
        bench.iter(|| merge_pairs_by(&device, &a, &vals, &b_keys, &vals, |x, y| x < y))
    });
    group.finish();
}

/// Individual (per-thread binary search) versus bulk (sort queries + sorted
/// search) lookups — the two strategies §IV-B weighs against each other.
fn bench_individual_vs_bulk_lookup(c: &mut Criterion) {
    use gpu_lsm::GpuLsm;
    let pairs = unique_random_pairs(N, 9);
    let lsm = GpuLsm::bulk_build(experiment_device(), 1 << 13, &pairs).unwrap();
    let queries: Vec<u32> = unique_random_pairs(1 << 15, 10)
        .iter()
        .map(|&(k, _)| k)
        .collect();

    let mut group = c.benchmark_group("ablation_lookup_strategy");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("individual_binary_search", |b| {
        b.iter(|| lsm.lookup(&queries))
    });
    group.bench_function("bulk_sorted_search", |b| {
        b.iter(|| lsm.lookup_bulk_sorted(&queries))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_status_bit_encoding,
    bench_sa_merge_vs_resort,
    bench_keys_vs_pairs_merge,
    bench_individual_vs_bulk_lookup
);
criterion_main!(benches);
