//! Plain-text table and CSV reporting, so each binary prints the same rows
//! and columns as the corresponding table in the paper and also leaves a
//! machine-readable trace behind.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have as many cells as the header).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row has {} cells, header has {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Render the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Write a table's CSV rendering to `path` (creating parent directories).
pub fn write_csv(table: &Table, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, table.to_csv())
}

/// Format a rate with the precision the paper uses (one decimal place).
pub fn fmt_rate(rate: f64) -> String {
    if rate.is_infinite() {
        "inf".to_string()
    } else if rate >= 100.0 {
        format!("{rate:.1}")
    } else {
        format!("{rate:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns_and_includes_all_rows() {
        let mut t = Table::new("Demo", &["b", "rate"]);
        t.add_row(vec!["1024".to_string(), "12.5".to_string()]);
        t.add_row(vec!["32768".to_string(), "3.75".to_string()]);
        let text = t.render();
        assert!(text.contains("Demo"));
        assert!(text.contains("32768"));
        assert_eq!(t.num_rows(), 2);
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.add_row(vec!["1".to_string(), "2".to_string()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.add_row(vec!["1".to_string()]);
    }

    #[test]
    fn write_csv_creates_file() {
        let mut t = Table::new("Demo", &["x"]);
        t.add_row(vec!["9".to_string()]);
        let dir = std::env::temp_dir().join("lsm_bench_test_csv");
        let path = dir.join("out.csv");
        write_csv(&t, &path).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains('9'));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fmt_rate_precision() {
        assert_eq!(fmt_rate(225.34), "225.3");
        assert_eq!(fmt_rate(3.456), "3.46");
        assert_eq!(fmt_rate(f64::INFINITY), "inf");
    }
}
