//! Minimal command-line parsing shared by the experiment binaries.
//!
//! Every binary accepts the same options:
//!
//! * `--scale <shift>` — shift the paper's problem sizes down by `shift`
//!   powers of two (default 8, i.e. n = 2^19 instead of 2^27 for Table II);
//!   `--scale 0` runs paper-sized inputs.
//! * `--seed <u64>` — workload seed (default 0xC0FFEE).
//! * `--csv <path>` — also write the result table as CSV.
//! * `--quick` — an aggressive scale for smoke tests (scale 12).
//! * `--zipf <theta>` — zipfian key skew for the mixed-workload sweeps
//!   (default 0.0 = uniform; only the service-level binaries consult it).

use std::path::PathBuf;

/// Parsed harness options.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOptions {
    /// Power-of-two scale shift applied to the paper's problem sizes.
    pub scale: u32,
    /// Workload seed.
    pub seed: u64,
    /// Optional CSV output path.
    pub csv: Option<PathBuf>,
    /// Zipfian key-skew exponent for service-level sweeps (0.0 = uniform).
    pub zipf_theta: f64,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            scale: 8,
            seed: 0xC0FFEE,
            csv: None,
            zipf_theta: 0.0,
        }
    }
}

impl HarnessOptions {
    /// Parse options from an iterator of argument strings (excluding the
    /// program name).  Unknown options cause an error string suitable for
    /// printing.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = HarnessOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = iter.next().ok_or("--scale needs a value")?;
                    opts.scale = v.parse().map_err(|_| format!("bad --scale value: {v}"))?;
                }
                "--seed" => {
                    let v = iter.next().ok_or("--seed needs a value")?;
                    opts.seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
                }
                "--csv" => {
                    let v = iter.next().ok_or("--csv needs a path")?;
                    opts.csv = Some(PathBuf::from(v));
                }
                "--quick" => opts.scale = 12,
                "--zipf" => {
                    let v = iter.next().ok_or("--zipf needs a value")?;
                    opts.zipf_theta = v.parse().map_err(|_| format!("bad --zipf value: {v}"))?;
                    if !(0.0..2.0).contains(&opts.zipf_theta) {
                        return Err(format!("--zipf must be in [0, 2): {v}"));
                    }
                }
                "--help" | "-h" => {
                    return Err(concat!(
                    "usage: <bin> [--scale N] [--seed S] [--csv PATH] [--quick] [--zipf T]\n",
                    "  --scale N   shift paper problem sizes down by N powers of two (default 8)\n",
                    "  --seed S    workload seed\n",
                    "  --csv PATH  also write results as CSV\n",
                    "  --quick     smoke-test scale (equivalent to --scale 12)\n",
                    "  --zipf T    zipfian key skew for service sweeps (default 0 = uniform)",
                )
                    .to_string())
                }
                other => return Err(format!("unknown option: {other}")),
            }
        }
        Ok(opts)
    }

    /// Parse from the process arguments, printing usage and exiting on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessOptions, String> {
        HarnessOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_args() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts, HarnessOptions::default());
        assert_eq!(opts.scale, 8);
    }

    #[test]
    fn parses_all_options() {
        let opts = parse(&["--scale", "4", "--seed", "99", "--csv", "/tmp/x.csv"]).unwrap();
        assert_eq!(opts.scale, 4);
        assert_eq!(opts.seed, 99);
        assert_eq!(opts.csv, Some(PathBuf::from("/tmp/x.csv")));
    }

    #[test]
    fn quick_sets_scale_12() {
        assert_eq!(parse(&["--quick"]).unwrap().scale, 12);
    }

    #[test]
    fn parses_and_validates_zipf() {
        assert_eq!(parse(&["--zipf", "0.99"]).unwrap().zipf_theta, 0.99);
        assert_eq!(parse(&[]).unwrap().zipf_theta, 0.0);
        assert!(parse(&["--zipf", "2.5"]).is_err());
        assert!(parse(&["--zipf"]).is_err());
    }

    #[test]
    fn rejects_unknown_and_missing_values() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
