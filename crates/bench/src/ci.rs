//! The CI bench-regression suite: a small, fixed workload whose throughput
//! is recorded as `BENCH_ci.json` on every CI run and compared against the
//! committed `BENCH_baseline.json`.
//!
//! The suite deliberately over-weights *small* inputs (batches of at most
//! 4Ki elements): those are the regime where fixed per-call costs — thread
//! spawning, radix histogram passes, per-kernel bookkeeping — dominate, so
//! they are the first numbers to move when dispatch overhead regresses.
//! Most metrics are rates in M elements/s (higher is better); metrics
//! named `*_us` are latencies in microseconds (lower is better), and the
//! comparator gates them in the right direction.
//!
//! The JSON schema is intentionally flat so the comparator does not need a
//! real JSON parser (the serde stand-in has no `Deserialize` runtime):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "repeats": 5,
//!   "metrics": { "lsm_insert_b1k": 12.34, ... }
//! }
//! ```

use std::fmt::Write as _;
use std::sync::Arc;

use gpu_lsm::{AdmittedLsm, GpuLsm, ShardedLsm};
use gpu_primitives::{merge::merge_by, radix_sort::sort_pairs};
use gpu_sim::Device;
use lsm_workloads::{
    missing_lookups, range_queries_with_expected_width, run_mixed_workload, unique_random_pairs,
    MixedWorkloadConfig,
};

use crate::measure::{elements_per_sec_m, harmonic_mean, time_once};

/// Schema version stamped into the JSON output.
pub const SCHEMA_VERSION: u32 = 1;

/// Workload seed; fixed so baseline and CI runs measure identical inputs.
pub const CI_SEED: u64 = 0xC1_BE7C;

/// How many times each metric is measured; the **median** run is reported.
/// The median damps both slow outliers (scheduler noise on shared CI
/// runners) and fast outliers (frequency bursts), either of which would
/// make a best-of or worst-of gate flaky.
pub const CI_REPEATS: usize = 5;

/// One measured throughput metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable metric name (JSON key).
    pub name: String,
    /// Throughput in M elements/s; higher is better.
    pub rate: f64,
}

fn ci_device() -> Arc<Device> {
    Arc::new(Device::k40c())
}

/// Harmonic-mean per-batch insert rate for inserting `num_batches` batches
/// of `batch_size` into an empty LSM.
fn lsm_insert_rate(batch_size: usize, num_batches: usize) -> f64 {
    let device = ci_device();
    let pairs = unique_random_pairs(batch_size * num_batches, CI_SEED);
    let mut lsm = GpuLsm::new(device, batch_size).expect("valid batch size");
    let mut rates = Vec::with_capacity(num_batches);
    for chunk in pairs.chunks(batch_size) {
        let (_, elapsed) = time_once(|| lsm.insert(chunk).expect("insert"));
        rates.push(elements_per_sec_m(batch_size, elapsed));
    }
    harmonic_mean(&rates)
}

/// Harmonic-mean per-batch insert rate of the *sharded* service on one
/// host thread: each batch pays the router's split pass plus one sub-batch
/// insert per touched shard.  At `num_shards = 1` this is the sharding
/// layer's pure overhead over `lsm_insert_*`; at higher shard counts it
/// additionally tracks the split/fan-out cost the shard-scaling experiment
/// relies on (the parallel win itself needs multiple cores and threads,
/// which CI runners don't reliably have — rates here are single-threaded
/// on purpose so the gate stays stable).
fn sharded_insert_rate(num_shards: usize, batch_size: usize, num_batches: usize) -> f64 {
    let device = ci_device();
    let pairs = unique_random_pairs(batch_size * num_batches, CI_SEED ^ 0x5AAD);
    let lsm = ShardedLsm::new(device, batch_size, num_shards).expect("valid shard count");
    let mut rates = Vec::with_capacity(num_batches);
    for chunk in pairs.chunks(batch_size) {
        let (_, elapsed) = time_once(|| lsm.insert(chunk).expect("insert"));
        rates.push(elements_per_sec_m(batch_size, elapsed));
    }
    harmonic_mean(&rates)
}

/// Steady-state carry-chain insert rate: bulk-prefill `prefill` batches
/// (occupying every level below the first empty one), then time the next
/// `timed` inserts, which run real merge cascades — including the deep
/// carry right after the prefill — through a ~`prefill · b`-element
/// structure.  This isolates the carry chain (merges + incremental
/// fence/filter maintenance) from the empty-structure regime
/// `lsm_insert_*` measures.
fn carry_merge_rate(batch_size: usize, prefill: usize, timed: usize) -> f64 {
    let device = ci_device();
    let pairs = unique_random_pairs(batch_size * (prefill + timed), CI_SEED ^ 0xCA44);
    let mut lsm =
        GpuLsm::bulk_build(device, batch_size, &pairs[..batch_size * prefill]).expect("bulk build");
    let mut rates = Vec::with_capacity(timed);
    for chunk in pairs[batch_size * prefill..].chunks(batch_size) {
        let (_, elapsed) = time_once(|| lsm.insert(chunk).expect("insert"));
        rates.push(elements_per_sec_m(batch_size, elapsed));
    }
    harmonic_mean(&rates)
}

/// Admitted (pipelined) insert rate on one submitter thread: submit
/// `num_batches` quarter-size batches through the admission queue of a
/// 4-shard service and include the final drain barrier, so the rate counts
/// *applied* work.  Queue handoff plus coalescing (sub-batches merge into
/// fuller shard batches) is what this measures against `sharded_insert_*`.
fn admitted_insert_rate(batch_size: usize, num_batches: usize) -> f64 {
    let device = ci_device();
    let submit_size = batch_size / 4;
    let pairs = unique_random_pairs(submit_size * num_batches, CI_SEED ^ 0xAD41);
    let lsm = AdmittedLsm::new(ShardedLsm::new(device, batch_size, 4).expect("valid shards"));
    let (_, elapsed) = time_once(|| {
        for chunk in pairs.chunks(submit_size) {
            lsm.insert(chunk).expect("submit");
        }
        lsm.flush().expect("admission pipeline alive");
    });
    elements_per_sec_m(submit_size * num_batches, elapsed)
}

/// Tail latency of the admitted write path: p99 of the admission applier's
/// per-batch **apply time** (µs) under a closed-loop workload against a
/// 4-shard admitted service.  Lower is better — the comparator treats
/// `*_us` metrics as such (see [`lower_is_better`]).  The apply component
/// is gated (rather than queue wait or client-observed submit time)
/// because it is the compute cost of the carry chain itself: it regresses
/// when the write path slows down, while queue wait mostly tracks workload
/// shape and scheduler noise.  The run is shaped for repeatability, not
/// load: one writer, no readers, and a one-outstanding-batch window, so
/// the loop fully serializes generate → submit → apply — nothing preempts
/// the applier mid-apply, coalesce windows stay uniform, and the p99
/// tracks the deepest carry in a deterministic batch stream instead of
/// whichever coalesced mega-batch the scheduler happened to form.  (The
/// multi-client saturation shape lives in the stress job's closed-loop
/// tests; a latency *gate* needs the repeatable shape.)
fn admitted_p99_us() -> f64 {
    let device = ci_device();
    let lsm = AdmittedLsm::new(ShardedLsm::new(device, 1 << 10, 4).expect("valid shards"));
    let config = MixedWorkloadConfig {
        writer_threads: 1,
        reader_threads: 0,
        batches_per_writer: 64,
        batch_size: 1 << 10,
        delete_fraction: 0.2,
        lookups_per_round: 0,
        intervals_per_round: 0,
        interval_width: 1 << 12,
        key_domain: 1 << 20,
        zipf_theta: 0.0,
        seed: CI_SEED ^ 0x1A7,
        closed_loop: true,
        think_time_us: 0,
        max_outstanding: 1,
    };
    let report = run_mixed_workload(&lsm, &config);
    debug_assert!(report.latency.update.count() > 0);
    let (_, apply) = lsm.latency_histograms();
    apply.p99() as f64 / 1_000.0
}

/// Rate of radix-sorting `n` random key–value pairs.
fn sort_pairs_rate(n: usize) -> f64 {
    let device = ci_device();
    let pairs = unique_random_pairs(n, CI_SEED ^ 0x50);
    let keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
    let values: Vec<u32> = pairs.iter().map(|&(_, v)| v).collect();
    let mut k = keys.clone();
    let mut v = values.clone();
    let (_, elapsed) = time_once(|| sort_pairs(&device, &mut k, &mut v));
    elements_per_sec_m(n, elapsed)
}

/// Rate of merging two sorted runs of `n / 2` keys each.
fn merge_rate(n: usize) -> f64 {
    let device = ci_device();
    let pairs = unique_random_pairs(n, CI_SEED ^ 0x4D);
    let mut a: Vec<u32> = pairs[..n / 2].iter().map(|&(k, _)| k).collect();
    let mut b: Vec<u32> = pairs[n / 2..].iter().map(|&(k, _)| k).collect();
    a.sort_unstable();
    b.sort_unstable();
    let (out, elapsed) = time_once(|| merge_by(&device, &a, &b, |x, y| x < y));
    assert_eq!(out.len(), n);
    elements_per_sec_m(n, elapsed)
}

/// Rate of looking up `n` present keys in an LSM of `8 * n` elements.
fn lookup_rate(n: usize) -> f64 {
    let device = ci_device();
    let pairs = unique_random_pairs(8 * n, CI_SEED ^ 0x10);
    let lsm = GpuLsm::bulk_build(device, n, &pairs).expect("bulk build");
    let queries: Vec<u32> = pairs.iter().take(n).map(|&(k, _)| k).collect();
    let (_, elapsed) = time_once(|| lsm.lookup(&queries));
    elements_per_sec_m(n, elapsed)
}

/// Rate of looking up `n` *absent* keys in a multi-level LSM of `11 n`
/// elements (11 batches occupy levels 0, 1 and 3).  Misses are the
/// query-path worst case — every occupied level is probed — so this is the
/// metric per-level filters and fences exist to move.
fn lookup_miss_rate(n: usize) -> f64 {
    let device = ci_device();
    let pairs = unique_random_pairs(11 * n, CI_SEED ^ 0x11);
    let lsm = GpuLsm::bulk_build(device, n, &pairs).expect("bulk build");
    let resident: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
    let queries = missing_lookups(&resident, n, CI_SEED ^ 0x31);
    let (_, elapsed) = time_once(|| lsm.lookup(&queries));
    elements_per_sec_m(n, elapsed)
}

/// Rate of `num_queries` warp-style bulk lookups ([`GpuLsm::bulk_get`])
/// against a multi-level LSM of 11 · 8Ki elements, queries drawn from the
/// resident keys.  The bulk path sorts the queries, marches them through
/// each level in fixed-size groups sharing one fence descent, and sweeps
/// the level in coalesced blocks — this metric gates that amortization
/// (group descent + block dedup) against the per-query baseline paths.
fn bulk_get_rate(num_queries: usize) -> f64 {
    let device = ci_device();
    let pairs = unique_random_pairs(11 << 13, CI_SEED ^ 0xB6);
    let lsm = GpuLsm::bulk_build(device, 1 << 13, &pairs).expect("bulk build");
    let queries: Vec<u32> = pairs
        .iter()
        .cycle()
        .take(num_queries)
        .map(|&(k, _)| k)
        .collect();
    let (_, elapsed) = time_once(|| lsm.bulk_get(&queries));
    elements_per_sec_m(num_queries, elapsed)
}

/// Rate of `num_queries` count queries (expected width L = 8, the paper's
/// Table IV small-interval case) against a multi-level LSM of 11 · 4Ki
/// elements.  Rates are in M queries/s.
fn count_rate(num_queries: usize) -> f64 {
    let device = ci_device();
    let pairs = unique_random_pairs(11 << 12, CI_SEED ^ 0xC0);
    let lsm = GpuLsm::bulk_build(device, 1 << 12, &pairs).expect("bulk build");
    let queries = range_queries_with_expected_width(pairs.len(), 8, num_queries, CI_SEED ^ 0xC1);
    let (_, elapsed) = time_once(|| lsm.count(&queries));
    elements_per_sec_m(num_queries, elapsed)
}

/// Rate of `num_queries` range queries over the same workload as
/// [`count_rate`] (stages 1–4 shared, plus the compaction stage 5).
fn range_rate(num_queries: usize) -> f64 {
    let device = ci_device();
    let pairs = unique_random_pairs(11 << 12, CI_SEED ^ 0xD0);
    let lsm = GpuLsm::bulk_build(device, 1 << 12, &pairs).expect("bulk build");
    let queries = range_queries_with_expected_width(pairs.len(), 8, num_queries, CI_SEED ^ 0xD1);
    let (_, elapsed) = time_once(|| lsm.range(&queries));
    elements_per_sec_m(num_queries, elapsed)
}

/// Run one measurement of every metric in the suite.
fn measure_once() -> Vec<Metric> {
    let m = |name: &str, rate: f64| Metric {
        name: name.to_string(),
        rate,
    };
    vec![
        // Small-batch insertion — the headline numbers the pool + radix
        // fast paths exist for.
        m("lsm_insert_b1k", lsm_insert_rate(1 << 10, 32)),
        m("lsm_insert_b4k", lsm_insert_rate(1 << 12, 16)),
        // Primitive building blocks at small and moderate sizes.
        m("sort_pairs_2k", sort_pairs_rate(1 << 11)),
        m("sort_pairs_64k", sort_pairs_rate(1 << 16)),
        m("merge_64k", merge_rate(1 << 16)),
        m("lookup_4k", lookup_rate(1 << 12)),
        // Query-path coverage beyond the single hit metric: all-miss
        // lookups (the filter/fence showcase) and small-interval
        // count/range queries (fence-clamped candidate gathering).
        m("lookup_miss_4k", lookup_miss_rate(1 << 12)),
        // Warp-style bulk execution: 100k sorted queries in shared-descent
        // groups (the paper's "PCIe tax" amortization argument).
        m("bulk_get_100k", bulk_get_rate(100_000)),
        m("count_1k", count_rate(1 << 10)),
        m("range_1k", range_rate(1 << 10)),
        // Sharded-service insert path: shards=1 tracks the routing layer's
        // overhead, shards=4 the split/fan-out cost as shards multiply.
        m("sharded_insert_s1", sharded_insert_rate(1, 1 << 10, 16)),
        m("sharded_insert_s4", sharded_insert_rate(4, 1 << 10, 16)),
        // Write-path restructuring coverage: steady-state carries through a
        // ~128Ki structure (planner/executor + incremental fence/filter
        // maintenance) and pipelined admission incl. the drain barrier.
        m("carry_merge_128k", carry_merge_rate(1 << 11, 63, 32)),
        m("admitted_insert_4k", admitted_insert_rate(1 << 12, 16)),
        // Tail latency of the admitted write path under a closed-loop
        // driver — the one lower-is-better metric in the suite.
        m("admitted_p99_us", admitted_p99_us()),
    ]
}

/// Run the full suite: `repeats` measurements per metric, median kept.
pub fn run_suite(repeats: usize) -> Vec<Metric> {
    let repeats = repeats.max(1);
    let mut samples: Vec<Vec<f64>> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for round in 0..repeats {
        for (slot, fresh) in measure_once().into_iter().enumerate() {
            if round == 0 {
                names.push(fresh.name);
                samples.push(vec![fresh.rate]);
            } else {
                debug_assert_eq!(names[slot], fresh.name);
                samples[slot].push(fresh.rate);
            }
        }
    }
    names
        .into_iter()
        .zip(samples)
        .map(|(name, mut rates)| {
            rates.sort_unstable_by(f64::total_cmp);
            Metric {
                name,
                rate: rates[rates.len() / 2],
            }
        })
        .collect()
}

/// Render a metric set as the flat JSON document described in the module
/// docs.
pub fn to_json(metrics: &[Metric], repeats: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"repeats\": {repeats},");
    let _ = writeln!(out, "  \"metrics\": {{");
    for (i, m) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        let _ = writeln!(out, "    \"{}\": {:.4}{}", m.name, m.rate, comma);
    }
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

/// Parse the `"metrics"` object of a document produced by [`to_json`].
///
/// This is a deliberately minimal scanner for the flat schema above, not a
/// general JSON parser: it looks for the `"metrics"` key and then reads
/// `"name": number` pairs until the closing brace.
pub fn parse_metrics(json: &str) -> Result<Vec<Metric>, String> {
    let start = json
        .find("\"metrics\"")
        .ok_or_else(|| "no \"metrics\" key".to_string())?;
    let body = &json[start..];
    let open = body.find('{').ok_or("no opening brace after \"metrics\"")?;
    let close = body[open..]
        .find('}')
        .ok_or("no closing brace for \"metrics\"")?;
    let inner = &body[open + 1..open + close];
    let mut metrics = Vec::new();
    for entry in inner.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, value) = entry
            .split_once(':')
            .ok_or_else(|| format!("bad metric entry: {entry:?}"))?;
        let name = name.trim().trim_matches('"');
        let rate: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("bad metric value for {name:?}: {value:?}"))?;
        metrics.push(Metric {
            name: name.to_string(),
            rate,
        });
    }
    if metrics.is_empty() {
        return Err("empty \"metrics\" object".to_string());
    }
    Ok(metrics)
}

/// Outcome of comparing a current run against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Metric name.
    pub name: String,
    /// Baseline rate (M elements/s).
    pub baseline: f64,
    /// Current rate (M elements/s).
    pub current: f64,
    /// `current / baseline`; below `1 - tolerance` is a regression for
    /// throughput metrics, above `1 + tolerance` for latency (`*_us`)
    /// metrics.
    pub ratio: f64,
    /// Whether this metric regressed beyond the tolerance.
    pub regressed: bool,
}

/// Whether a metric is latency-like: for `*_us` metrics **smaller** values
/// are better, so the gate fails when the value *grows* past the
/// tolerance instead of when it shrinks.
pub fn lower_is_better(name: &str) -> bool {
    name.ends_with("_us")
}

/// Compare current metrics against a baseline with a relative `tolerance`
/// (0.2 = fail when a throughput metric loses more than 20 %, or a
/// latency (`*_us`) metric grows by more than 20 %).  Only metrics present
/// on *both* sides are compared — use [`unmatched`] to surface the rest —
/// so the suite can grow without breaking older baselines.
pub fn compare(baseline: &[Metric], current: &[Metric], tolerance: f64) -> Vec<Comparison> {
    let mut out = Vec::new();
    for b in baseline {
        if let Some(c) = current.iter().find(|c| c.name == b.name) {
            let ratio = if b.rate > 0.0 {
                c.rate / b.rate
            } else {
                f64::INFINITY
            };
            let regressed = if lower_is_better(&b.name) {
                ratio > 1.0 + tolerance
            } else {
                ratio < 1.0 - tolerance
            };
            out.push(Comparison {
                name: b.name.clone(),
                baseline: b.rate,
                current: c.rate,
                ratio,
                regressed,
            });
        }
    }
    out
}

/// Names present in exactly one of the two metric sets (first the ones
/// only in `baseline`, then the ones only in `current`).  The gate warns
/// about these instead of silently losing coverage when a metric is
/// renamed or removed.
pub fn unmatched(baseline: &[Metric], current: &[Metric]) -> Vec<String> {
    let mut names = Vec::new();
    for b in baseline {
        if !current.iter().any(|c| c.name == b.name) {
            names.push(format!("{} (baseline only)", b.name));
        }
    }
    for c in current {
        if !baseline.iter().any(|b| b.name == c.name) {
            names.push(format!("{} (current only)", c.name));
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(name: &str, rate: f64) -> Metric {
        Metric {
            name: name.to_string(),
            rate,
        }
    }

    #[test]
    fn json_round_trips() {
        let metrics = vec![metric("a", 12.5), metric("b", 0.125)];
        let json = to_json(&metrics, 3);
        let parsed = parse_metrics(&json).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "a");
        assert!((parsed[0].rate - 12.5).abs() < 1e-9);
        assert!((parsed[1].rate - 0.125).abs() < 1e-9);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_metrics("{}").is_err());
        assert!(parse_metrics("{\"metrics\": {}}").is_err());
        assert!(parse_metrics("{\"metrics\": {\"a\": \"fast\"}}").is_err());
    }

    #[test]
    fn compare_flags_only_regressions_beyond_tolerance() {
        let baseline = vec![metric("a", 100.0), metric("b", 100.0), metric("c", 100.0)];
        let current = vec![
            metric("a", 85.0),  // -15 %: within a 20 % tolerance
            metric("b", 75.0),  // -25 %: regression
            metric("c", 140.0), // improvement
        ];
        let report = compare(&baseline, &current, 0.2);
        assert_eq!(report.len(), 3);
        assert!(!report[0].regressed);
        assert!(report[1].regressed);
        assert!(!report[2].regressed);
    }

    #[test]
    fn latency_metrics_regress_in_the_opposite_direction() {
        assert!(lower_is_better("admitted_p99_us"));
        assert!(!lower_is_better("lsm_insert_b1k"));
        let baseline = vec![metric("tail_us", 100.0), metric("rate", 100.0)];
        // Latency shrinking is an improvement, not a regression.
        let faster = vec![metric("tail_us", 60.0), metric("rate", 100.0)];
        assert!(compare(&baseline, &faster, 0.2)
            .iter()
            .all(|c| !c.regressed));
        // Latency growing past tolerance fails; a rate growing never does.
        let slower = vec![metric("tail_us", 130.0), metric("rate", 180.0)];
        let report = compare(&baseline, &slower, 0.2);
        assert!(report[0].regressed);
        assert!(!report[1].regressed);
        // Growth within tolerance passes.
        let ok = vec![metric("tail_us", 115.0), metric("rate", 100.0)];
        assert!(compare(&baseline, &ok, 0.2).iter().all(|c| !c.regressed));
    }

    #[test]
    fn compare_skips_unmatched_metrics_and_unmatched_reports_them() {
        let baseline = vec![metric("gone", 10.0), metric("both", 10.0)];
        let current = vec![metric("new", 10.0), metric("both", 10.0)];
        assert_eq!(compare(&baseline, &current, 0.2).len(), 1);
        let missing = unmatched(&baseline, &current);
        assert_eq!(
            missing,
            vec![
                "gone (baseline only)".to_string(),
                "new (current only)".to_string()
            ]
        );
        assert!(unmatched(&baseline, &baseline).is_empty());
    }

    #[test]
    fn suite_runs_and_produces_positive_rates() {
        // One repeat keeps this test cheap; it exercises every metric once.
        let metrics = run_suite(1);
        assert_eq!(metrics.len(), 15);
        for m in &metrics {
            assert!(m.rate > 0.0, "metric {} must be positive", m.name);
        }
        // Names are unique (the comparator matches by name).
        let mut names: Vec<&str> = metrics.iter().map(|m| m.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), metrics.len());
    }
}
