//! §V-D — the cleanup experiments: cleanup throughput as a function of the
//! stale fraction, cleanup versus rebuilding from scratch, and the effect of
//! cleanup on subsequent query performance.
//!
//! The paper's headline observations:
//! * cleanup runs at ~1.8–1.9 G elements/s, largely independent of how much
//!   is removed, and is up to ~2.5× faster than rebuilding from scratch;
//! * after many deletions, *cleanup + queries* can be several times faster
//!   than querying the dirty structure (≈4.8× in their example), because the
//!   number of occupied levels drops.

use gpu_lsm::GpuLsm;
use lsm_workloads::{existing_lookups, mixed_batches, unique_random_pairs};

use super::experiment_device;
use crate::measure::{elements_per_sec_m, time_once};
use crate::report::{fmt_rate, Table};

/// Result of one cleanup-rate measurement.
#[derive(Debug, Clone, Copy)]
pub struct CleanupRateResult {
    /// Resident elements before cleanup.
    pub elements_before: usize,
    /// Fraction of resident elements that were stale.
    pub stale_fraction: f64,
    /// Cleanup throughput in M elements/s (resident elements / cleanup time).
    pub cleanup_rate: f64,
    /// Bulk-rebuild throughput on the surviving valid data, normalised by
    /// the rebuild's own input size, for comparison.
    pub rebuild_rate: f64,
    /// Occupied levels before and after.
    pub levels_before: usize,
    /// Occupied levels after cleanup.
    pub levels_after: usize,
}

/// Build an LSM with roughly the requested stale fraction and measure the
/// cleanup rate against rebuilding from scratch.
pub fn run_cleanup_rate(
    batch_size: usize,
    num_batches: usize,
    delete_fraction: f64,
    seed: u64,
) -> CleanupRateResult {
    let device = experiment_device();
    let seq = mixed_batches(batch_size, num_batches, delete_fraction, seed);
    let mut lsm = GpuLsm::new(device.clone(), batch_size).expect("valid batch size");
    for batch in &seq.batches {
        lsm.update(batch).expect("update");
    }
    let stats = lsm.stats();
    let elements_before = stats.total_elements;
    let stale_fraction = stats.stale_fraction();
    let levels_before = stats.occupied_levels;

    let (report, t_cleanup) = time_once(|| lsm.cleanup());

    // Rebuild comparison: bulk-build a fresh LSM from the surviving pairs.
    let valid_pairs: Vec<(u32, u32)> = seq.live_keys.iter().map(|&k| (k, 0u32)).collect();
    let (_, t_rebuild) =
        time_once(|| GpuLsm::bulk_build(device, batch_size, &valid_pairs).expect("bulk build"));

    CleanupRateResult {
        elements_before,
        stale_fraction,
        cleanup_rate: elements_per_sec_m(elements_before, t_cleanup),
        rebuild_rate: elements_per_sec_m(valid_pairs.len().max(1), t_rebuild),
        levels_before,
        levels_after: report.levels_after,
    }
}

/// Result of the "queries before vs. after cleanup" experiment.
#[derive(Debug, Clone, Copy)]
pub struct CleanupQueryResult {
    /// Time for the query workload on the dirty structure (ms).
    pub dirty_query_ms: f64,
    /// Cleanup time (ms).
    pub cleanup_ms: f64,
    /// Time for the same workload after cleanup (ms).
    pub clean_query_ms: f64,
    /// Speed-up of (cleanup + clean queries) over dirty queries.
    pub speedup_including_cleanup: f64,
    /// Occupied levels before and after cleanup.
    pub levels_before: usize,
    /// Occupied levels after cleanup.
    pub levels_after: usize,
}

/// Measure lookup throughput before and after a cleanup on a structure with
/// many deletions (the paper's 32 M-lookup example, scaled).
pub fn run_cleanup_query_speedup(
    batch_size: usize,
    num_batches: usize,
    delete_fraction: f64,
    num_queries: usize,
    seed: u64,
) -> CleanupQueryResult {
    let device = experiment_device();
    let seq = mixed_batches(batch_size, num_batches, delete_fraction, seed);
    let mut lsm = GpuLsm::new(device, batch_size).expect("valid batch size");
    for batch in &seq.batches {
        lsm.update(batch).expect("update");
    }
    let query_keys = if seq.live_keys.is_empty() {
        unique_random_pairs(num_queries, seed)
            .iter()
            .map(|&(k, _)| k)
            .collect()
    } else {
        existing_lookups(&seq.live_keys, num_queries, seed ^ 0x51)
    };

    let levels_before = lsm.num_occupied_levels();
    let (dirty_results, t_dirty) = time_once(|| lsm.lookup(&query_keys));
    let (_, t_cleanup) = time_once(|| lsm.cleanup());
    let (clean_results, t_clean) = time_once(|| lsm.lookup(&query_keys));
    assert_eq!(
        dirty_results, clean_results,
        "cleanup changed query answers"
    );

    let dirty_query_ms = t_dirty.as_secs_f64() * 1e3;
    let cleanup_ms = t_cleanup.as_secs_f64() * 1e3;
    let clean_query_ms = t_clean.as_secs_f64() * 1e3;
    CleanupQueryResult {
        dirty_query_ms,
        cleanup_ms,
        clean_query_ms,
        speedup_including_cleanup: dirty_query_ms / (cleanup_ms + clean_query_ms),
        levels_before,
        levels_after: lsm.num_occupied_levels(),
    }
}

/// Render cleanup-rate measurements.
pub fn render_rates(results: &[CleanupRateResult]) -> Table {
    let mut table = Table::new(
        "Cleanup rate vs. stale fraction",
        &[
            "elements",
            "stale %",
            "cleanup (M el/s)",
            "rebuild (M el/s)",
            "levels before",
            "levels after",
        ],
    );
    for r in results {
        table.add_row(vec![
            r.elements_before.to_string(),
            format!("{:.1}", r.stale_fraction * 100.0),
            fmt_rate(r.cleanup_rate),
            fmt_rate(r.rebuild_rate),
            r.levels_before.to_string(),
            r.levels_after.to_string(),
        ]);
    }
    table
}

/// Render the query-speed-up measurement.
pub fn render_query_speedup(r: &CleanupQueryResult) -> Table {
    let mut table = Table::new("Queries before vs. after cleanup", &["phase", "time (ms)"]);
    table.add_row(vec![
        "queries on dirty LSM".into(),
        format!("{:.3}", r.dirty_query_ms),
    ]);
    table.add_row(vec!["cleanup".into(), format!("{:.3}", r.cleanup_ms)]);
    table.add_row(vec![
        "queries after cleanup".into(),
        format!("{:.3}", r.clean_query_ms),
    ]);
    table.add_row(vec![
        "speedup incl. cleanup".into(),
        format!("{:.2}x", r.speedup_including_cleanup),
    ]);
    table.add_row(vec![
        "occupied levels".into(),
        format!("{} -> {}", r.levels_before, r.levels_after),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleanup_rate_measurement_is_positive_and_reduces_levels() {
        let r = run_cleanup_rate(256, 15, 0.3, 21);
        assert!(r.cleanup_rate > 0.0);
        assert!(r.rebuild_rate > 0.0);
        assert!(r.stale_fraction > 0.0);
        assert!(r.levels_after <= r.levels_before);
    }

    #[test]
    fn query_speedup_preserves_answers_and_reduces_levels() {
        let r = run_cleanup_query_speedup(256, 15, 0.4, 2048, 22);
        assert!(r.dirty_query_ms > 0.0);
        assert!(r.clean_query_ms > 0.0);
        assert!(r.levels_after <= r.levels_before);
        assert!(r.speedup_including_cleanup > 0.0);
    }

    #[test]
    fn renderers_cover_all_rows() {
        let rates = vec![run_cleanup_rate(128, 7, 0.1, 1)];
        assert_eq!(render_rates(&rates).num_rows(), 1);
        let q = run_cleanup_query_speedup(128, 7, 0.1, 512, 2);
        assert_eq!(render_query_speedup(&q).num_rows(), 5);
    }
}
