//! §V-B bulk build: building each data structure from scratch out of `n`
//! key–value pairs.
//!
//! The paper reports that the GPU LSM's bulk build is essentially a radix
//! sort (the same as building a sorted array) and about 2× faster than
//! building the cuckoo hash table at an 80 % load factor.

use gpu_baselines::{CuckooHashTable, SortedArray};
use gpu_lsm::GpuLsm;
use lsm_workloads::unique_random_pairs;

use super::experiment_device;
use crate::measure::{elements_per_sec_m, time_once};
use crate::report::{fmt_rate, Table};

/// Build rates (M elements/s) for all three structures at one size.
#[derive(Debug, Clone, Copy)]
pub struct BulkBuildResult {
    /// Number of elements built from.
    pub num_elements: usize,
    /// Batch size used for the LSM build.
    pub batch_size: usize,
    /// GPU LSM bulk-build rate.
    pub lsm_rate: f64,
    /// Sorted-array build rate.
    pub sa_rate: f64,
    /// Cuckoo hash build rate (80 % load factor).
    pub cuckoo_rate: f64,
}

/// Run the bulk-build comparison for `num_elements` elements.
pub fn run(num_elements: usize, batch_size: usize, seed: u64) -> BulkBuildResult {
    let device = experiment_device();
    let pairs = unique_random_pairs(num_elements, seed);

    let (_, t_lsm) =
        time_once(|| GpuLsm::bulk_build(device.clone(), batch_size, &pairs).expect("bulk build"));
    let (_, t_sa) = time_once(|| SortedArray::bulk_build(device.clone(), &pairs));
    let (_, t_cuckoo) = time_once(|| CuckooHashTable::bulk_build(device, &pairs));

    BulkBuildResult {
        num_elements,
        batch_size,
        lsm_rate: elements_per_sec_m(num_elements, t_lsm),
        sa_rate: elements_per_sec_m(num_elements, t_sa),
        cuckoo_rate: elements_per_sec_m(num_elements, t_cuckoo),
    }
}

/// Render one or more bulk-build measurements.
pub fn render(results: &[BulkBuildResult]) -> Table {
    let mut table = Table::new(
        "Bulk build rates (M elements/s)",
        &["n", "b", "GPU LSM", "Sorted Array", "Cuckoo hash"],
    );
    for r in results {
        table.add_row(vec![
            r.num_elements.to_string(),
            r.batch_size.to_string(),
            fmt_rate(r.lsm_rate),
            fmt_rate(r.sa_rate),
            fmt_rate(r.cuckoo_rate),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rates_positive_and_lsm_close_to_sa() {
        let result = run(1 << 14, 1 << 10, 11);
        assert!(result.lsm_rate > 0.0);
        assert!(result.sa_rate > 0.0);
        assert!(result.cuckoo_rate > 0.0);
        // The LSM bulk build is a sort plus slicing: it should be within a
        // small factor of the plain sorted-array build.
        let ratio = result.lsm_rate / result.sa_rate;
        assert!(ratio > 0.3 && ratio < 3.0, "LSM/SA build ratio {ratio}");
    }

    #[test]
    fn render_includes_every_measurement() {
        let results = vec![run(1 << 12, 1 << 8, 1), run(1 << 13, 1 << 8, 2)];
        assert_eq!(render(&results).num_rows(), 2);
    }
}
