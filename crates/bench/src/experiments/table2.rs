//! Table II — insertion rates (M elements/s) versus batch size.
//!
//! For every batch size `b` the paper inserts `n/b` consecutive batches into
//! an initially empty GPU LSM (and, separately, a GPU SA), computing the
//! per-batch insertion rate, and reports the minimum, maximum and harmonic
//! mean over every possible number of resident batches, plus the cuckoo
//! hash table's bulk-build rate for context.
//!
//! The LSM sweep is run in full (its total cost is `O(n log(n/b))`).  The
//! sorted-array sweep is quadratic in `n`, which a CPU host cannot afford at
//! every `r`; it is instead measured at a uniform sample of resident sizes
//! (the state at `r` batches is reproduced with a bulk build, which is
//! exactly what the incremental process would have produced).  The sampling
//! is recorded in the result so reports can disclose it.

use gpu_baselines::{CuckooHashTable, SortedArray};
use gpu_lsm::GpuLsm;
use lsm_workloads::{unique_random_pairs, SweepConfig};

use super::{experiment_device, sample_resident_batches};
use crate::measure::{
    elements_per_sec_m, modelled_time_once, rate_m_from_seconds, time_once, RateStats,
};
use crate::report::{fmt_rate, Table};

/// Result row for one batch size.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Batch size `b`.
    pub batch_size: usize,
    /// GPU LSM per-batch insertion-rate statistics (wall clock).
    pub lsm: RateStats,
    /// GPU SA per-batch insertion-rate statistics (wall clock).
    pub sa: RateStats,
    /// LSM rates in modelled device time (deterministic).
    pub lsm_modelled: RateStats,
    /// SA rates in modelled device time (deterministic).
    pub sa_modelled: RateStats,
}

/// Full Table II result.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// One row per batch size.
    pub rows: Vec<Table2Row>,
    /// Harmonic mean of the per-batch-size LSM harmonic means (the paper's
    /// bottom-row "mean").
    pub lsm_overall_mean: f64,
    /// Same for the sorted array.
    pub sa_overall_mean: f64,
    /// LSM overall mean in modelled device time.
    pub lsm_overall_modelled_mean: f64,
    /// SA overall mean in modelled device time.
    pub sa_overall_modelled_mean: f64,
    /// Cuckoo hash bulk-build rate (M elements/s) at 80 % load factor.
    pub cuckoo_build_rate: f64,
    /// Number of SA sample points per batch size.
    pub sa_samples: usize,
}

/// Measure the per-batch LSM insertion rates for every `r` in `1..=n/b`,
/// returning `(wall_rates, modelled_rates)` in M elements/s.
pub fn lsm_insertion_rates(
    batch_size: usize,
    num_batches: usize,
    seed: u64,
) -> (Vec<f64>, Vec<f64>) {
    let device = experiment_device();
    let pairs = unique_random_pairs(batch_size * num_batches, seed);
    let mut lsm = GpuLsm::new(device.clone(), batch_size).expect("valid batch size");
    let mut rates = Vec::with_capacity(num_batches);
    let mut modelled_rates = Vec::with_capacity(num_batches);
    for chunk in pairs.chunks(batch_size) {
        let ((_, elapsed), modelled) =
            modelled_time_once(&device, || time_once(|| lsm.insert(chunk).expect("insert")));
        rates.push(elements_per_sec_m(batch_size, elapsed));
        modelled_rates.push(rate_m_from_seconds(batch_size, modelled));
    }
    (rates, modelled_rates)
}

/// Measure SA insertion rates at a sample of resident sizes, returning
/// `(wall_rates, modelled_rates)` in M elements/s.
pub fn sa_insertion_rates(
    batch_size: usize,
    num_batches: usize,
    samples: usize,
    seed: u64,
) -> (Vec<f64>, Vec<f64>) {
    let device = experiment_device();
    let pairs = unique_random_pairs(batch_size * (num_batches + 1), seed);
    let sampled_r = sample_resident_batches(num_batches, samples);
    let mut rates = Vec::with_capacity(sampled_r.len());
    let mut modelled_rates = Vec::with_capacity(sampled_r.len());
    for r in sampled_r {
        // Reproduce the state after r - 1 batches with a bulk build, then
        // time the insertion of batch r.
        let resident = &pairs[..(r - 1) * batch_size];
        let incoming = &pairs[(r - 1) * batch_size..r * batch_size];
        let mut sa = SortedArray::bulk_build(device.clone(), resident);
        let ((_, elapsed), modelled) =
            modelled_time_once(&device, || time_once(|| sa.insert_batch(incoming)));
        rates.push(elements_per_sec_m(batch_size, elapsed));
        modelled_rates.push(rate_m_from_seconds(batch_size, modelled));
    }
    (rates, modelled_rates)
}

/// Run the full Table II experiment.
pub fn run(config: &SweepConfig, sa_samples: usize) -> Table2Result {
    let mut rows = Vec::with_capacity(config.batch_sizes.len());
    for &b in config.batch_sizes.iter().rev() {
        let num_batches = config.num_batches(b);
        if num_batches == 0 {
            continue;
        }
        let (lsm_rates, lsm_modelled) = lsm_insertion_rates(b, num_batches, config.seed);
        let (sa_rates, sa_modelled) = sa_insertion_rates(b, num_batches, sa_samples, config.seed);
        rows.push(Table2Row {
            batch_size: b,
            lsm: RateStats::from_rates(&lsm_rates),
            sa: RateStats::from_rates(&sa_rates),
            lsm_modelled: RateStats::from_rates(&lsm_modelled),
            sa_modelled: RateStats::from_rates(&sa_modelled),
        });
    }

    // Cuckoo bulk build of n elements at the default 80 % load factor.
    let device = experiment_device();
    let pairs = unique_random_pairs(config.total_elements, config.seed ^ 0xCC);
    let (_, elapsed) = time_once(|| CuckooHashTable::bulk_build(device, &pairs));
    let cuckoo_build_rate = elements_per_sec_m(pairs.len(), elapsed);

    let overall = |f: &dyn Fn(&Table2Row) -> f64| {
        crate::measure::harmonic_mean(&rows.iter().map(f).collect::<Vec<_>>())
    };
    Table2Result {
        lsm_overall_mean: overall(&|r| r.lsm.harmonic_mean),
        sa_overall_mean: overall(&|r| r.sa.harmonic_mean),
        lsm_overall_modelled_mean: overall(&|r| r.lsm_modelled.harmonic_mean),
        sa_overall_modelled_mean: overall(&|r| r.sa_modelled.harmonic_mean),
        rows,
        cuckoo_build_rate,
        sa_samples,
    }
}

/// Render the result in the paper's row/column layout.
pub fn render(result: &Table2Result) -> Table {
    let mut table = Table::new(
        "Table II: insertion rates (M elements/s)",
        &[
            "b", "LSM min", "LSM max", "LSM mean", "SA min", "SA max", "SA mean",
        ],
    );
    for row in &result.rows {
        table.add_row(vec![
            format!("2^{}", row.batch_size.trailing_zeros()),
            fmt_rate(row.lsm.min),
            fmt_rate(row.lsm.max),
            fmt_rate(row.lsm.harmonic_mean),
            fmt_rate(row.sa.min),
            fmt_rate(row.sa.max),
            fmt_rate(row.sa.harmonic_mean),
        ]);
    }
    table.add_row(vec![
        "mean".to_string(),
        String::new(),
        String::new(),
        fmt_rate(result.lsm_overall_mean),
        String::new(),
        String::new(),
        fmt_rate(result.sa_overall_mean),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SweepConfig {
        SweepConfig {
            total_elements: 1 << 12,
            batch_sizes: vec![1 << 8, 1 << 10, 1 << 12],
            seed: 1,
        }
    }

    #[test]
    fn produces_one_row_per_batch_size_and_positive_rates() {
        let result = run(&tiny_config(), 8);
        assert_eq!(result.rows.len(), 3);
        for row in &result.rows {
            assert!(row.lsm.harmonic_mean > 0.0, "b = {}", row.batch_size);
            assert!(row.sa.harmonic_mean > 0.0);
            assert!(row.lsm.min <= row.lsm.max);
        }
        assert!(result.cuckoo_build_rate > 0.0);
        assert!(result.lsm_overall_mean > 0.0);
        let rendered = render(&result);
        assert_eq!(rendered.num_rows(), 4);
    }

    #[test]
    fn lsm_beats_sa_for_small_batches() {
        // The headline shape of Table II: with many resident batches the LSM
        // sustains a (much) higher mean insertion rate than re-merging the
        // whole sorted array.
        let config = SweepConfig {
            total_elements: 1 << 14,
            batch_sizes: vec![1 << 7],
            seed: 2,
        };
        let result = run(&config, 12);
        let row = &result.rows[0];
        // Modelled device time: deterministic, so the margin is exact.
        assert!(
            row.lsm_modelled.harmonic_mean > row.sa_modelled.harmonic_mean,
            "LSM modelled mean {} should exceed SA modelled mean {}",
            row.lsm_modelled.harmonic_mean,
            row.sa_modelled.harmonic_mean
        );
    }

    #[test]
    fn single_batch_case_matches_bulk_build() {
        // When b = n there is exactly one insertion (r = 1) for both
        // structures; min == max for the LSM.
        let config = SweepConfig {
            total_elements: 1 << 10,
            batch_sizes: vec![1 << 10],
            seed: 3,
        };
        let result = run(&config, 4);
        let row = &result.rows[0];
        assert_eq!(row.lsm.count, 1);
        assert!((row.lsm.min - row.lsm.max).abs() < 1e-9);
    }
}
