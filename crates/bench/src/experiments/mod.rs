//! Experiment runners, one module per table or figure of the paper.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`table1`] | Table I — asymptotic work per item (measured scaling) |
//! | [`table2`] | Table II — insertion rates vs. batch size |
//! | [`table3`] | Table III — lookup rates (none exist / all exist) |
//! | [`table4`] | Table IV — count and range query rates (L = 8, 1024) |
//! | [`fig4`] | Fig. 4a — batch insertion time; Fig. 4b — effective rate |
//! | [`bulk_build`] | §V-B — bulk build rates (LSM / SA / cuckoo) |
//! | [`bulk_get`] | "PCIe tax" — single-get latency vs. bulk-get amortization |
//! | [`cleanup`] | §V-D — cleanup rate and post-cleanup query speed-up |
//! | [`sharded`] | beyond the paper — shard scaling under mixed traffic |
//! | [`imbalance`] | beyond the paper — routing policies under zipfian skew |

pub mod bulk_build;
pub mod bulk_get;
pub mod cleanup;
pub mod fig4;
pub mod imbalance;
pub mod sharded;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

use std::sync::Arc;

use gpu_sim::Device;

/// Create the device every experiment runs on (the modelled K40c).
pub fn experiment_device() -> Arc<Device> {
    Arc::new(Device::k40c())
}

/// Sample up to `max_samples` values of `r` uniformly from `1..=max_r`,
/// always including 1 and `max_r`.  Used where the paper sweeps *every*
/// possible number of resident batches, which is infeasible for the
/// quadratic-cost sorted-array baseline on a CPU host.
pub fn sample_resident_batches(max_r: usize, max_samples: usize) -> Vec<usize> {
    if max_r == 0 {
        return Vec::new();
    }
    if max_r <= max_samples {
        return (1..=max_r).collect();
    }
    let mut samples: Vec<usize> = (0..max_samples)
        .map(|i| 1 + i * (max_r - 1) / (max_samples - 1))
        .collect();
    samples.dedup();
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_includes_endpoints_and_is_sorted() {
        let s = sample_resident_batches(1000, 16);
        assert_eq!(*s.first().unwrap(), 1);
        assert_eq!(*s.last().unwrap(), 1000);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.len() <= 16);
    }

    #[test]
    fn sampling_small_ranges_returns_all() {
        assert_eq!(sample_resident_batches(5, 16), vec![1, 2, 3, 4, 5]);
        assert!(sample_resident_batches(0, 4).is_empty());
    }
}
