//! Figure 4 — (a) per-batch insertion time as a function of the number of
//! resident batches (the binary-counter sawtooth), and (b) the effective
//! insertion rate (resident elements divided by cumulative insertion time)
//! as batches accumulate, for the GPU LSM and the sorted array.

use gpu_baselines::SortedArray;
use gpu_lsm::GpuLsm;
use lsm_workloads::unique_random_pairs;

use super::experiment_device;
use crate::measure::{elements_per_sec_m, modelled_time_once, rate_m_from_seconds, time_once};
use crate::report::{fmt_rate, Table};

/// One point of Fig. 4a: the time to insert the `r`-th batch.
#[derive(Debug, Clone, Copy)]
pub struct Fig4aPoint {
    /// Number of resident batches *after* this insertion.
    pub resident_batches: usize,
    /// Wall-clock time to insert this batch, in milliseconds.
    pub insertion_ms: f64,
    /// Modelled device time of this batch (cost model over the recorded
    /// traffic), in milliseconds — deterministic, host-load-immune.
    pub modelled_ms: f64,
}

/// Run Fig. 4a: insert `num_batches` batches of `batch_size` and record each
/// insertion time.
pub fn run_fig4a(batch_size: usize, num_batches: usize, seed: u64) -> Vec<Fig4aPoint> {
    let device = experiment_device();
    let pairs = unique_random_pairs(batch_size * num_batches, seed);
    let mut lsm = GpuLsm::new(device.clone(), batch_size).expect("valid batch size");
    pairs
        .chunks(batch_size)
        .enumerate()
        .map(|(i, chunk)| {
            let ((_, elapsed), modelled) =
                modelled_time_once(&device, || time_once(|| lsm.insert(chunk).expect("insert")));
            Fig4aPoint {
                resident_batches: i + 1,
                insertion_ms: elapsed.as_secs_f64() * 1e3,
                modelled_ms: modelled * 1e3,
            }
        })
        .collect()
}

/// One series point of Fig. 4b.
#[derive(Debug, Clone, Copy)]
pub struct Fig4bPoint {
    /// Total elements inserted so far.
    pub total_elements: usize,
    /// Effective insertion rate so far (M elements/s, wall clock).
    pub effective_rate: f64,
    /// Effective insertion rate so far in modelled device time
    /// (M elements/s) — deterministic, host-load-immune.
    pub modelled_rate: f64,
}

/// One Fig. 4b series (a data structure at one batch size).
#[derive(Debug, Clone)]
pub struct Fig4bSeries {
    /// Label, e.g. "GPU LSM b=128K".
    pub label: String,
    /// The measured points, in insertion order.
    pub points: Vec<Fig4bPoint>,
}

/// Run one Fig. 4b series for the GPU LSM.
pub fn run_fig4b_lsm(batch_size: usize, num_batches: usize, seed: u64) -> Fig4bSeries {
    let device = experiment_device();
    let pairs = unique_random_pairs(batch_size * num_batches, seed);
    let mut lsm = GpuLsm::new(device.clone(), batch_size).expect("valid batch size");
    let mut cumulative = std::time::Duration::ZERO;
    let mut cumulative_modelled = 0.0f64;
    let points = pairs
        .chunks(batch_size)
        .enumerate()
        .map(|(i, chunk)| {
            let ((_, elapsed), modelled) =
                modelled_time_once(&device, || time_once(|| lsm.insert(chunk).expect("insert")));
            cumulative += elapsed;
            cumulative_modelled += modelled;
            Fig4bPoint {
                total_elements: (i + 1) * batch_size,
                effective_rate: elements_per_sec_m((i + 1) * batch_size, cumulative),
                modelled_rate: rate_m_from_seconds((i + 1) * batch_size, cumulative_modelled),
            }
        })
        .collect();
    Fig4bSeries {
        label: format!("GPU LSM b={batch_size}"),
        points,
    }
}

/// Run one Fig. 4b series for the sorted array.
pub fn run_fig4b_sa(batch_size: usize, num_batches: usize, seed: u64) -> Fig4bSeries {
    let device = experiment_device();
    let pairs = unique_random_pairs(batch_size * num_batches, seed);
    let mut sa = SortedArray::new(device.clone());
    let mut cumulative = std::time::Duration::ZERO;
    let mut cumulative_modelled = 0.0f64;
    let points = pairs
        .chunks(batch_size)
        .enumerate()
        .map(|(i, chunk)| {
            let ((_, elapsed), modelled) =
                modelled_time_once(&device, || time_once(|| sa.insert_batch(chunk)));
            cumulative += elapsed;
            cumulative_modelled += modelled;
            Fig4bPoint {
                total_elements: (i + 1) * batch_size,
                effective_rate: elements_per_sec_m((i + 1) * batch_size, cumulative),
                modelled_rate: rate_m_from_seconds((i + 1) * batch_size, cumulative_modelled),
            }
        })
        .collect();
    Fig4bSeries {
        label: format!("Sorted Array b={batch_size}"),
        points,
    }
}

/// Render Fig. 4a as a table of (r, ms) pairs.
pub fn render_fig4a(batch_size: usize, points: &[Fig4aPoint]) -> Table {
    let mut table = Table::new(
        &format!("Fig. 4a: batch insertion time, b = {batch_size}"),
        &["resident batches", "insertion time (ms)"],
    );
    for p in points {
        table.add_row(vec![
            p.resident_batches.to_string(),
            format!("{:.3}", p.insertion_ms),
        ]);
    }
    table
}

/// Render a set of Fig. 4b series as one table (series are columns).
pub fn render_fig4b(series: &[Fig4bSeries]) -> Table {
    let mut header: Vec<String> = vec!["total elements".to_string()];
    header.extend(series.iter().map(|s| s.label.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Fig. 4b: effective insertion rate (M elements/s)",
        &header_refs,
    );

    // Use the union of x positions of the longest series; shorter series
    // leave blanks past their end.
    let longest = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    let reference = series
        .iter()
        .max_by_key(|s| s.points.len())
        .map(|s| s.points.as_slice())
        .unwrap_or(&[]);
    for reference_point in reference.iter().take(longest) {
        let mut row = vec![reference_point.total_elements.to_string()];
        for s in series {
            row.push(
                s.points
                    .iter()
                    .find(|p| p.total_elements == reference_point.total_elements)
                    .map(|p| fmt_rate(p.effective_rate))
                    .unwrap_or_default(),
            );
        }
        table.add_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4a_shows_the_carry_chain_sawtooth() {
        // Assert on modelled device time: it is a pure function of the
        // traffic each insertion records, so the sawtooth is exact.
        let points = run_fig4a(256, 16, 1);
        assert_eq!(points.len(), 16);
        // Batch 16 (r: 15 -> 16) merges every level; batch 2 merges one.
        // The worst case should be clearly slower than the best case.
        let max = points.iter().map(|p| p.modelled_ms).fold(0.0, f64::max);
        let min = points
            .iter()
            .map(|p| p.modelled_ms)
            .fold(f64::MAX, f64::min);
        assert!(max > min);
        // Wall time was measured too (it is what the figure reports).
        assert!(points.iter().all(|p| p.insertion_ms > 0.0));
        // The most expensive insertions are those with the longest carry
        // chains: r = 8 and r = 16 (all lower levels full before them).
        let worst = points
            .iter()
            .max_by(|a, b| a.modelled_ms.total_cmp(&b.modelled_ms))
            .unwrap();
        assert_eq!(
            worst.resident_batches % 4,
            0,
            "worst insertion should have a carry chain of at least two merges, got r = {}",
            worst.resident_batches
        );
    }

    #[test]
    fn fig4b_lsm_rate_degrades_slower_than_sa() {
        let lsm = run_fig4b_lsm(256, 24, 2);
        let sa = run_fig4b_sa(256, 24, 2);
        // Compare the final effective rates in modelled device time (exact;
        // the wall-clock rates track the same shape but with host noise).
        let lsm_final = lsm.points.last().unwrap().modelled_rate;
        let sa_final = sa.points.last().unwrap().modelled_rate;
        assert!(
            lsm_final > sa_final,
            "LSM modelled effective rate {lsm_final} should exceed SA {sa_final}"
        );
    }

    #[test]
    fn renderers_produce_full_tables() {
        let points = run_fig4a(128, 8, 3);
        assert_eq!(render_fig4a(128, &points).num_rows(), 8);
        let series = vec![run_fig4b_lsm(128, 8, 3), run_fig4b_sa(128, 8, 3)];
        assert_eq!(render_fig4b(&series).num_rows(), 8);
    }
}
