//! Table III — lookup rates (M queries/s) in two scenarios: none of the
//! queried keys exist, or all of them exist.
//!
//! For a fixed total element count `n` and each batch size `b`, the paper
//! builds *every* possible GPU LSM with `1 ≤ r ≤ n/b` resident batches, runs
//! as many lookups as there are resident elements, and reports min/max/
//! harmonic-mean rates; the sorted array (one level of the same size) and
//! the cuckoo hash table are measured for comparison.  Here `r` is sampled
//! uniformly (the per-`r` structure is reproduced with a bulk build, which
//! yields the identical level occupancy).

use gpu_baselines::{CuckooHashTable, SortedArray};
use gpu_lsm::GpuLsm;
use lsm_workloads::{existing_lookups, missing_lookups, unique_random_pairs, SweepConfig};

use super::{experiment_device, sample_resident_batches};
use crate::measure::{queries_per_sec_m, time_once, RateStats};
use crate::report::{fmt_rate, Table};

/// Lookup-rate statistics for one batch size, both query scenarios.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Batch size `b`.
    pub batch_size: usize,
    /// GPU LSM, none of the queried keys exist.
    pub lsm_none: RateStats,
    /// GPU LSM, all queried keys exist.
    pub lsm_all: RateStats,
    /// GPU SA (single sorted level of the same resident size), none exist.
    pub sa_none: RateStats,
    /// GPU SA, all exist.
    pub sa_all: RateStats,
}

/// Full Table III result.
#[derive(Debug, Clone)]
pub struct Table3Result {
    /// One row per batch size.
    pub rows: Vec<Table3Row>,
    /// Cuckoo hash lookup rate, none of the keys exist (M queries/s).
    pub cuckoo_none: f64,
    /// Cuckoo hash lookup rate, all keys exist.
    pub cuckoo_all: f64,
    /// Number of `r` samples per batch size.
    pub r_samples: usize,
    /// Cap applied to the number of queries per measurement.
    pub max_queries: usize,
}

/// Measure LSM and SA lookup rates for one batch size.
fn row_for_batch_size(
    total_elements: usize,
    batch_size: usize,
    r_samples: usize,
    max_queries: usize,
    seed: u64,
) -> Table3Row {
    let device = experiment_device();
    let pairs = unique_random_pairs(total_elements, seed);
    let resident_keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
    let max_r = total_elements / batch_size;
    let sampled = sample_resident_batches(max_r, r_samples);

    let mut lsm_none = Vec::new();
    let mut lsm_all = Vec::new();
    let mut sa_none = Vec::new();
    let mut sa_all = Vec::new();
    for &r in &sampled {
        let resident = &pairs[..r * batch_size];
        let resident_key_slice = &resident_keys[..r * batch_size];
        let num_queries = (r * batch_size).min(max_queries);
        let all_queries = existing_lookups(resident_key_slice, num_queries, seed ^ r as u64);
        let none_queries = missing_lookups(resident_key_slice, num_queries, seed ^ (r as u64) << 1);

        let lsm = GpuLsm::bulk_build(device.clone(), batch_size, resident).expect("bulk build");
        let (_, t) = time_once(|| lsm.lookup(&none_queries));
        lsm_none.push(queries_per_sec_m(num_queries, t));
        let (res, t) = time_once(|| lsm.lookup(&all_queries));
        debug_assert!(res.iter().all(|r| r.is_some()));
        lsm_all.push(queries_per_sec_m(num_queries, t));

        let sa = SortedArray::bulk_build(device.clone(), resident);
        let (_, t) = time_once(|| sa.lookup(&none_queries));
        sa_none.push(queries_per_sec_m(num_queries, t));
        let (_, t) = time_once(|| sa.lookup(&all_queries));
        sa_all.push(queries_per_sec_m(num_queries, t));
    }

    Table3Row {
        batch_size,
        lsm_none: RateStats::from_rates(&lsm_none),
        lsm_all: RateStats::from_rates(&lsm_all),
        sa_none: RateStats::from_rates(&sa_none),
        sa_all: RateStats::from_rates(&sa_all),
    }
}

/// Run the full Table III experiment.
pub fn run(config: &SweepConfig, r_samples: usize, max_queries: usize) -> Table3Result {
    let rows: Vec<Table3Row> = config
        .batch_sizes
        .iter()
        .rev()
        .filter(|&&b| b <= config.total_elements)
        .map(|&b| {
            row_for_batch_size(
                config.total_elements,
                b,
                r_samples,
                max_queries,
                config.seed,
            )
        })
        .collect();

    // Cuckoo hash lookups over the full element set.
    let device = experiment_device();
    let pairs = unique_random_pairs(config.total_elements, config.seed);
    let resident_keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
    let table = CuckooHashTable::bulk_build(device, &pairs);
    let num_queries = config.total_elements.min(max_queries);
    let all_queries = existing_lookups(&resident_keys, num_queries, config.seed ^ 0xA11);
    let none_queries = missing_lookups(&resident_keys, num_queries, config.seed);
    let (_, t_none) = time_once(|| table.lookup(&none_queries));
    let (_, t_all) = time_once(|| table.lookup(&all_queries));

    Table3Result {
        rows,
        cuckoo_none: queries_per_sec_m(num_queries, t_none),
        cuckoo_all: queries_per_sec_m(num_queries, t_all),
        r_samples,
        max_queries,
    }
}

/// Render in the paper's layout.
pub fn render(result: &Table3Result) -> Table {
    let mut table = Table::new(
        "Table III: lookup rates (M queries/s)",
        &[
            "b",
            "LSM none min",
            "LSM none max",
            "LSM none mean",
            "SA none mean",
            "LSM all min",
            "LSM all max",
            "LSM all mean",
            "SA all mean",
        ],
    );
    for row in &result.rows {
        table.add_row(vec![
            format!("2^{}", row.batch_size.trailing_zeros()),
            fmt_rate(row.lsm_none.min),
            fmt_rate(row.lsm_none.max),
            fmt_rate(row.lsm_none.harmonic_mean),
            fmt_rate(row.sa_none.harmonic_mean),
            fmt_rate(row.lsm_all.min),
            fmt_rate(row.lsm_all.max),
            fmt_rate(row.lsm_all.harmonic_mean),
            fmt_rate(row.sa_all.harmonic_mean),
        ]);
    }
    table.add_row(vec![
        "cuckoo".to_string(),
        String::new(),
        String::new(),
        fmt_rate(result.cuckoo_none),
        String::new(),
        String::new(),
        String::new(),
        fmt_rate(result.cuckoo_all),
        String::new(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SweepConfig {
        SweepConfig {
            total_elements: 1 << 12,
            batch_sizes: vec![1 << 8, 1 << 10],
            seed: 5,
        }
    }

    #[test]
    fn produces_rows_with_positive_rates() {
        let result = run(&tiny_config(), 4, 2048);
        assert_eq!(result.rows.len(), 2);
        for row in &result.rows {
            assert!(row.lsm_none.harmonic_mean > 0.0);
            assert!(row.lsm_all.harmonic_mean > 0.0);
            assert!(row.sa_none.harmonic_mean > 0.0);
            assert!(row.sa_all.harmonic_mean > 0.0);
        }
        assert!(result.cuckoo_all > 0.0);
        assert!(result.cuckoo_none > 0.0);
        assert_eq!(render(&result).num_rows(), 3);
    }

    #[test]
    fn larger_batch_sizes_do_not_hurt_lsm_lookups() {
        // Shape check: the LSM with b = n (one level) should not be slower
        // than with many levels (smaller b) by a large factor — in the paper
        // the mean rate *decreases* as b shrinks.  Allow noise but check the
        // ordering of the extreme batch sizes.
        let config = SweepConfig {
            total_elements: 1 << 13,
            batch_sizes: vec![1 << 7, 1 << 13],
            seed: 6,
        };
        let result = run(&config, 3, 4096);
        let small_b = result.rows.iter().find(|r| r.batch_size == 1 << 7).unwrap();
        let big_b = result
            .rows
            .iter()
            .find(|r| r.batch_size == 1 << 13)
            .unwrap();
        assert!(
            big_b.lsm_none.harmonic_mean >= small_b.lsm_none.harmonic_mean * 0.5,
            "single-level LSM lookups unexpectedly slow: {} vs {}",
            big_b.lsm_none.harmonic_mean,
            small_b.lsm_none.harmonic_mean
        );
    }
}
