//! Shard-imbalance experiment: per-shard load balance under zipfian key
//! skew, comparing the three routing policies the service supports.
//!
//! Beyond the paper (whose workloads are uniform): skewed key popularity
//! concentrates a uniform (bit-shift) router's traffic on the shards that
//! own the hot prefix of the key space, so added shards stop buying
//! parallelism.  This experiment drives the same zipfian mixed workload
//! against
//!
//! 1. the **uniform** router (equal key ranges per shard),
//! 2. a **learned** router whose split points are fitted offline from a
//!    sample of the key distribution ([`ShardRouter::fit`]), and
//! 3. an **adaptive** service that starts uniform with online rebalancing
//!    enabled and lets hot-shard splits discover the boundaries live,
//!
//! and reports each run's *imbalance factor* — max over mean per-shard
//! update operations (1.0 = perfectly balanced, `num_shards` = everything
//! on one shard) — alongside throughput, so the balance win is visible
//! next to its cost.

use gpu_lsm::{LsmConfig, RebalanceConfig, ShardRouter, ShardedLsm};
use lsm_workloads::{run_mixed_workload, MixedWorkloadConfig, MixedWorkloadReport, ZipfKeys};

use super::experiment_device;
use crate::report::{fmt_rate, Table};

/// How many keys to sample from the workload distribution when fitting the
/// learned router's split points.
const FIT_SAMPLE: usize = 1 << 16;

/// One routing policy's run.
#[derive(Debug, Clone)]
pub struct ImbalanceRow {
    /// The mixed-workload report for this policy.
    pub report: MixedWorkloadReport,
    /// Final per-shard update-operation counts.
    pub per_shard_ops: Vec<u64>,
    /// Max over mean of `per_shard_ops` (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Shard count after the run (adaptive runs may have split).
    pub final_shards: usize,
    /// Online splits performed during the run.
    pub splits: u64,
    /// Online merges performed during the run.
    pub merges: u64,
}

/// Full shard-imbalance result.
#[derive(Debug, Clone)]
pub struct ImbalanceResult {
    /// One row per routing policy: uniform, learned, adaptive.
    pub rows: Vec<ImbalanceRow>,
    /// The workload every row was driven with.
    pub config: MixedWorkloadConfig,
}

/// Max-over-mean load factor of per-shard operation counts.  Returns 1.0
/// for degenerate inputs (no shards or no traffic), the balanced ideal.
pub fn imbalance_factor(per_shard_ops: &[u64]) -> f64 {
    let total: u64 = per_shard_ops.iter().sum();
    if per_shard_ops.is_empty() || total == 0 {
        return 1.0;
    }
    let max = *per_shard_ops.iter().max().expect("non-empty") as f64;
    let mean = total as f64 / per_shard_ops.len() as f64;
    max / mean
}

fn measure(service: ShardedLsm, config: &MixedWorkloadConfig) -> ImbalanceRow {
    let report = run_mixed_workload(&service, config);
    service
        .check_invariants()
        .expect("sharded invariants after workload");
    let stats = service.stats();
    let per_shard_ops: Vec<u64> = stats.per_shard.iter().map(|s| s.update_ops).collect();
    ImbalanceRow {
        report,
        imbalance: imbalance_factor(&per_shard_ops),
        final_shards: per_shard_ops.len(),
        per_shard_ops,
        splits: stats.rebalance_splits,
        merges: stats.rebalance_merges,
    }
}

/// Run the shard-imbalance comparison at `num_shards` shards.  The config
/// must have a positive `zipf_theta` — with uniform keys all three
/// policies are equivalent and the experiment measures nothing.
pub fn run(num_shards: usize, config: &MixedWorkloadConfig) -> ImbalanceResult {
    assert!(
        config.zipf_theta > 0.0,
        "shard_imbalance needs a skewed workload (set zipf_theta > 0)"
    );
    assert!(num_shards >= 2, "need at least two shards to imbalance");
    let mut rows = Vec::with_capacity(3);

    // 1. Uniform bit-shift router: equal key ranges per shard.
    let uniform = ShardedLsm::new(experiment_device(), config.batch_size, num_shards)
        .expect("valid shard count");
    rows.push(measure(uniform, config));

    // 2. Learned router fitted offline from a sample of the workload's own
    //    key distribution (a fresh sampler stream, not the writers').
    let mut sampler = ZipfKeys::new(config.key_domain, config.zipf_theta, config.seed ^ 0xF17);
    let sample = sampler.sample_batch(FIT_SAMPLE);
    let router = ShardRouter::fit(num_shards, &sample).expect("fit learned router");
    let learned = ShardedLsm::with_router(
        experiment_device(),
        config.batch_size,
        router,
        LsmConfig::default(),
    )
    .expect("valid learned router");
    rows.push(measure(learned, config));

    // 3. Adaptive: start uniform, let hot-shard splits find the boundaries
    //    online.  Thresholds are scaled to the workload so several
    //    evaluations happen within the run.
    let total_ops = (config.writer_threads * config.batches_per_writer * config.batch_size) as u64;
    let adaptive_config = LsmConfig::default().rebalance(RebalanceConfig {
        enabled: true,
        min_ops: (total_ops / 16).max(config.batch_size as u64),
        hot_fraction: 1.5 / num_shards as f64,
        cold_fraction: 0.1 / num_shards as f64,
        max_shards: num_shards * 4,
        min_shards: 1,
        check_interval: 4,
    });
    let adaptive = ShardedLsm::with_config(
        experiment_device(),
        config.batch_size,
        num_shards,
        adaptive_config,
    )
    .expect("valid shard count");
    rows.push(measure(adaptive, config));

    ImbalanceResult {
        rows,
        config: config.clone(),
    }
}

/// Render the comparison as a table.
pub fn render(result: &ImbalanceResult) -> Table {
    let mut table = Table::new(
        &format!(
            "Shard imbalance: zipf(theta = {}) mixed traffic ({}w/{}r threads, b = {})",
            result.config.zipf_theta,
            result.config.writer_threads,
            result.config.reader_threads,
            result.config.batch_size
        ),
        &[
            "backend",
            "imbalance",
            "shards",
            "splits",
            "merges",
            "update M ops/s",
            "query M q/s",
        ],
    );
    for row in &result.rows {
        table.add_row(vec![
            row.report.backend.clone(),
            format!("{:.2}", row.imbalance),
            row.final_shards.to_string(),
            row.splits.to_string(),
            row.merges.to_string(),
            fmt_rate(row.report.update_rate_m),
            fmt_rate(row.report.query_rate_m),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> MixedWorkloadConfig {
        MixedWorkloadConfig {
            writer_threads: 2,
            reader_threads: 1,
            batches_per_writer: 8,
            batch_size: 64,
            delete_fraction: 0.1,
            lookups_per_round: 32,
            intervals_per_round: 2,
            interval_width: 1 << 8,
            key_domain: 1 << 20,
            zipf_theta: 0.99,
            seed: 23,
            closed_loop: false,
            think_time_us: 0,
            max_outstanding: 0,
        }
    }

    #[test]
    fn imbalance_factor_is_max_over_mean() {
        assert_eq!(imbalance_factor(&[]), 1.0);
        assert_eq!(imbalance_factor(&[0, 0]), 1.0);
        assert_eq!(imbalance_factor(&[10, 10, 10, 10]), 1.0);
        assert_eq!(imbalance_factor(&[40, 0, 0, 0]), 4.0);
    }

    #[test]
    fn learned_router_balances_better_than_uniform_under_skew() {
        let result = run(4, &tiny_config());
        assert_eq!(result.rows.len(), 3);
        let uniform = &result.rows[0];
        let learned = &result.rows[1];
        let adaptive = &result.rows[2];
        assert_eq!(uniform.report.backend, "sharded-lsm x4");
        assert_eq!(learned.report.backend, "sharded-lsm x4 learned");
        // Zipf keys over a 2^20 domain land almost entirely in the lowest
        // uniform shard of the 31-bit key space: heavily imbalanced.
        assert!(
            uniform.imbalance > 2.0,
            "uniform router should be imbalanced under skew: {}",
            uniform.imbalance
        );
        // The fitted split points spread the same traffic.
        assert!(
            learned.imbalance < uniform.imbalance,
            "learned router must balance better: learned {} vs uniform {}",
            learned.imbalance,
            uniform.imbalance
        );
        // The adaptive run actually split shards to chase the skew.
        assert!(adaptive.splits >= 1, "adaptive run should split");
        assert!(adaptive.final_shards > 4);
        assert_eq!(render(&result).num_rows(), 3);
    }
}
