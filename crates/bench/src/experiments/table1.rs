//! Table I — the asymptotic comparison, checked empirically.
//!
//! Table I is analytical: per-item work of O(log n) for LSM updates versus
//! O(n) for sorted-array updates, O(log² n) versus O(log n) lookups, and
//! O(1) cuckoo lookups.  This experiment measures how per-item update cost
//! and per-query lookup cost *grow* as `n` doubles, and reports the fitted
//! growth exponent (slope of log(cost) against log(n)), which should be
//! ≈ 0 for polylogarithmic costs and ≈ 1 for linear ones.

use gpu_baselines::{CuckooHashTable, SortedArray};
use gpu_lsm::GpuLsm;
use lsm_workloads::{existing_lookups, unique_random_pairs};

use super::experiment_device;
use crate::measure::{modelled_time_once, time_once};
use crate::report::Table;

/// Measured per-item costs at one structure size.  Every cost is recorded
/// twice: host wall-clock and modelled device time (the cost model applied
/// to the recorded memory traffic).  The modelled costs are deterministic,
/// so the shape tests fit their growth exponents against those.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Resident elements when the measurement was taken.
    pub n: usize,
    /// Microseconds per inserted element (LSM batch insert at this size).
    pub lsm_insert_us_per_item: f64,
    /// Microseconds per inserted element (SA merge insert at this size).
    pub sa_insert_us_per_item: f64,
    /// Microseconds per lookup (LSM).
    pub lsm_lookup_us_per_query: f64,
    /// Microseconds per lookup (SA).
    pub sa_lookup_us_per_query: f64,
    /// Microseconds per lookup (cuckoo hash).
    pub cuckoo_lookup_us_per_query: f64,
    /// Modelled µs per inserted element (LSM).
    pub lsm_insert_modelled_us: f64,
    /// Modelled µs per inserted element (SA).
    pub sa_insert_modelled_us: f64,
    /// Modelled µs per lookup (LSM).
    pub lsm_lookup_modelled_us: f64,
    /// Modelled µs per lookup (SA).
    pub sa_lookup_modelled_us: f64,
    /// Modelled µs per lookup (cuckoo hash).
    pub cuckoo_lookup_modelled_us: f64,
}

/// Full scaling study.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// One point per structure size.
    pub points: Vec<ScalingPoint>,
    /// Fitted growth exponents (slope of log cost vs. log n).
    pub lsm_insert_exponent: f64,
    /// Growth exponent of SA insertion cost.
    pub sa_insert_exponent: f64,
    /// Growth exponent of LSM lookup cost.
    pub lsm_lookup_exponent: f64,
    /// Growth exponent of SA lookup cost.
    pub sa_lookup_exponent: f64,
    /// Growth exponent of cuckoo lookup cost.
    pub cuckoo_lookup_exponent: f64,
    /// Growth exponent of modelled LSM insertion cost.
    pub lsm_insert_modelled_exponent: f64,
    /// Growth exponent of modelled SA insertion cost.
    pub sa_insert_modelled_exponent: f64,
    /// Growth exponent of modelled LSM lookup cost.
    pub lsm_lookup_modelled_exponent: f64,
    /// Growth exponent of modelled SA lookup cost.
    pub sa_lookup_modelled_exponent: f64,
    /// Growth exponent of modelled cuckoo lookup cost.
    pub cuckoo_lookup_modelled_exponent: f64,
}

/// Least-squares slope of `log2(y)` against `log2(x)`.
pub fn growth_exponent(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return 0.0;
    }
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| (x.log2(), y.max(1e-12).log2()))
        .collect();
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Run the scaling study over `sizes` (element counts), with the given batch
/// size and query count per measurement.
pub fn run(sizes: &[usize], batch_size: usize, num_queries: usize, seed: u64) -> Table1Result {
    let device = experiment_device();
    let mut points = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let pairs = unique_random_pairs(n + batch_size, seed);
        let resident = &pairs[..n];
        let incoming = &pairs[n..n + batch_size];
        let resident_keys: Vec<u32> = resident.iter().map(|&(k, _)| k).collect();
        let queries = existing_lookups(&resident_keys, num_queries, seed ^ n as u64);

        // Insertion cost at size n.
        let mut lsm = GpuLsm::bulk_build(device.clone(), batch_size, resident).expect("bulk build");
        let ((_, t), m_lsm_ins) = modelled_time_once(&device, || {
            time_once(|| lsm.insert(incoming).expect("insert"))
        });
        let lsm_insert_us_per_item = t.as_secs_f64() * 1e6 / batch_size as f64;
        let mut sa = SortedArray::bulk_build(device.clone(), resident);
        let ((_, t), m_sa_ins) =
            modelled_time_once(&device, || time_once(|| sa.insert_batch(incoming)));
        let sa_insert_us_per_item = t.as_secs_f64() * 1e6 / batch_size as f64;

        // Lookup cost at size n (structures rebuilt without the extra batch
        // so sizes are exactly n).
        let lsm = GpuLsm::bulk_build(device.clone(), batch_size, resident).expect("bulk build");
        let sa = SortedArray::bulk_build(device.clone(), resident);
        let cuckoo = CuckooHashTable::bulk_build(device.clone(), resident);
        let ((_, t_lsm), m_lsm_lk) =
            modelled_time_once(&device, || time_once(|| lsm.lookup(&queries)));
        let ((_, t_sa), m_sa_lk) =
            modelled_time_once(&device, || time_once(|| sa.lookup(&queries)));
        let ((_, t_ck), m_ck_lk) =
            modelled_time_once(&device, || time_once(|| cuckoo.lookup(&queries)));

        points.push(ScalingPoint {
            n,
            lsm_insert_us_per_item,
            sa_insert_us_per_item,
            lsm_lookup_us_per_query: t_lsm.as_secs_f64() * 1e6 / num_queries as f64,
            sa_lookup_us_per_query: t_sa.as_secs_f64() * 1e6 / num_queries as f64,
            cuckoo_lookup_us_per_query: t_ck.as_secs_f64() * 1e6 / num_queries as f64,
            lsm_insert_modelled_us: m_lsm_ins * 1e6 / batch_size as f64,
            sa_insert_modelled_us: m_sa_ins * 1e6 / batch_size as f64,
            lsm_lookup_modelled_us: m_lsm_lk * 1e6 / num_queries as f64,
            sa_lookup_modelled_us: m_sa_lk * 1e6 / num_queries as f64,
            cuckoo_lookup_modelled_us: m_ck_lk * 1e6 / num_queries as f64,
        });
    }

    let fit = |f: &dyn Fn(&ScalingPoint) -> f64| {
        growth_exponent(
            &points
                .iter()
                .map(|p| (p.n as f64, f(p)))
                .collect::<Vec<_>>(),
        )
    };
    Table1Result {
        lsm_insert_exponent: fit(&|p| p.lsm_insert_us_per_item),
        sa_insert_exponent: fit(&|p| p.sa_insert_us_per_item),
        lsm_lookup_exponent: fit(&|p| p.lsm_lookup_us_per_query),
        sa_lookup_exponent: fit(&|p| p.sa_lookup_us_per_query),
        cuckoo_lookup_exponent: fit(&|p| p.cuckoo_lookup_us_per_query),
        lsm_insert_modelled_exponent: fit(&|p| p.lsm_insert_modelled_us),
        sa_insert_modelled_exponent: fit(&|p| p.sa_insert_modelled_us),
        lsm_lookup_modelled_exponent: fit(&|p| p.lsm_lookup_modelled_us),
        sa_lookup_modelled_exponent: fit(&|p| p.sa_lookup_modelled_us),
        cuckoo_lookup_modelled_exponent: fit(&|p| p.cuckoo_lookup_modelled_us),
        points,
    }
}

/// Render the scaling study.
pub fn render(result: &Table1Result) -> Table {
    let mut table = Table::new(
        "Table I (empirical): per-item cost vs. n (µs), growth exponents in last row",
        &[
            "n",
            "LSM insert",
            "SA insert",
            "LSM lookup",
            "SA lookup",
            "Cuckoo lookup",
        ],
    );
    for p in &result.points {
        table.add_row(vec![
            p.n.to_string(),
            format!("{:.4}", p.lsm_insert_us_per_item),
            format!("{:.4}", p.sa_insert_us_per_item),
            format!("{:.4}", p.lsm_lookup_us_per_query),
            format!("{:.4}", p.sa_lookup_us_per_query),
            format!("{:.4}", p.cuckoo_lookup_us_per_query),
        ]);
    }
    table.add_row(vec![
        "exponent".to_string(),
        format!("{:.2}", result.lsm_insert_exponent),
        format!("{:.2}", result.sa_insert_exponent),
        format!("{:.2}", result.lsm_lookup_exponent),
        format!("{:.2}", result.sa_lookup_exponent),
        format!("{:.2}", result.cuckoo_lookup_exponent),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_exponent_recovers_known_slopes() {
        let linear: Vec<(f64, f64)> = (1..=6)
            .map(|i| (i as f64 * 100.0, i as f64 * 5.0))
            .collect();
        assert!((growth_exponent(&linear) - 1.0).abs() < 0.05);
        let constant: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64 * 100.0, 3.0)).collect();
        assert!(growth_exponent(&constant).abs() < 0.05);
        assert_eq!(growth_exponent(&[(1.0, 1.0)]), 0.0);
    }

    #[test]
    fn sa_insert_cost_grows_faster_than_lsm() {
        // The key asymptotic claim of Table I: per-item SA insertion cost is
        // ~linear in n while the LSM's is polylogarithmic; the fitted
        // exponents should reflect a clear separation.
        let result = run(&[1 << 12, 1 << 14, 1 << 16], 1 << 9, 2048, 33);
        // Modelled exponents are deterministic, so the separation is exact.
        assert!(
            result.sa_insert_modelled_exponent > result.lsm_insert_modelled_exponent + 0.3,
            "SA modelled exponent {} vs LSM modelled exponent {}",
            result.sa_insert_modelled_exponent,
            result.lsm_insert_modelled_exponent
        );
        assert_eq!(render(&result).num_rows(), 4);
    }
}
