//! Table IV — count and range query rates (M queries/s) for expected result
//! widths L = 8 and L = 1024, GPU LSM versus GPU SA.
//!
//! As in Table III, the paper sweeps every possible number of resident
//! batches for a fixed `n`; here `r` is sampled.  Query intervals are drawn
//! so that the expected number of resident keys they cover is `L`
//! (`lsm_workloads::range_queries_with_expected_width`).

use gpu_baselines::SortedArray;
use gpu_lsm::GpuLsm;
use lsm_workloads::{range_queries_with_expected_width, unique_random_pairs, SweepConfig};

use super::{experiment_device, sample_resident_batches};
use crate::measure::{queries_per_sec_m, time_once, RateStats};
use crate::report::{fmt_rate, Table};

/// Which retrieval operation a row measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// COUNT(k1, k2).
    Count,
    /// RANGE(k1, k2).
    Range,
}

impl std::fmt::Display for QueryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryKind::Count => write!(f, "count"),
            QueryKind::Range => write!(f, "range"),
        }
    }
}

/// Statistics for one (operation, batch size, L) combination.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Count or range.
    pub kind: QueryKind,
    /// Batch size `b`.
    pub batch_size: usize,
    /// Expected result width `L`.
    pub expected_width: usize,
    /// GPU LSM rate statistics over the sampled `r` values.
    pub lsm: RateStats,
    /// GPU SA rate statistics.
    pub sa: RateStats,
}

/// Full Table IV result.
#[derive(Debug, Clone)]
pub struct Table4Result {
    /// All rows (kind-major, then batch size, then L).
    pub rows: Vec<Table4Row>,
    /// Number of `r` samples per configuration.
    pub r_samples: usize,
    /// Cap on the number of queries per measurement.
    pub max_queries: usize,
}

#[allow(clippy::too_many_arguments)]
fn measure_one(
    kind: QueryKind,
    total_elements: usize,
    batch_size: usize,
    expected_width: usize,
    r_samples: usize,
    max_queries: usize,
    seed: u64,
) -> Table4Row {
    let device = experiment_device();
    let pairs = unique_random_pairs(total_elements, seed);
    let max_r = total_elements / batch_size;
    let sampled = sample_resident_batches(max_r, r_samples);

    let mut lsm_rates = Vec::new();
    let mut sa_rates = Vec::new();
    for &r in &sampled {
        let resident = &pairs[..r * batch_size];
        let num_queries = (r * batch_size).min(max_queries);
        let queries = range_queries_with_expected_width(
            resident.len(),
            expected_width,
            num_queries,
            seed ^ r as u64,
        );

        let lsm = GpuLsm::bulk_build(device.clone(), batch_size, resident).expect("bulk build");
        let sa = SortedArray::bulk_build(device.clone(), resident);
        match kind {
            QueryKind::Count => {
                let (_, t) = time_once(|| lsm.count(&queries));
                lsm_rates.push(queries_per_sec_m(num_queries, t));
                let (_, t) = time_once(|| sa.count(&queries));
                sa_rates.push(queries_per_sec_m(num_queries, t));
            }
            QueryKind::Range => {
                let (_, t) = time_once(|| lsm.range(&queries));
                lsm_rates.push(queries_per_sec_m(num_queries, t));
                let (_, t) = time_once(|| sa.range(&queries));
                sa_rates.push(queries_per_sec_m(num_queries, t));
            }
        }
    }

    Table4Row {
        kind,
        batch_size,
        expected_width,
        lsm: RateStats::from_rates(&lsm_rates),
        sa: RateStats::from_rates(&sa_rates),
    }
}

/// Run the full Table IV experiment for the given expected widths
/// (the paper uses `[8, 1024]`).
pub fn run(
    config: &SweepConfig,
    expected_widths: &[usize],
    r_samples: usize,
    max_queries: usize,
) -> Table4Result {
    let mut rows = Vec::new();
    for &kind in &[QueryKind::Count, QueryKind::Range] {
        for &b in config.batch_sizes.iter().rev() {
            if b > config.total_elements {
                continue;
            }
            for &l in expected_widths {
                rows.push(measure_one(
                    kind,
                    config.total_elements,
                    b,
                    l,
                    r_samples,
                    max_queries,
                    config.seed,
                ));
            }
        }
    }
    Table4Result {
        rows,
        r_samples,
        max_queries,
    }
}

/// Render in the paper's layout.
pub fn render(result: &Table4Result) -> Table {
    let mut table = Table::new(
        "Table IV: count and range query rates (M queries/s)",
        &["op", "b", "L", "LSM min", "LSM max", "LSM mean", "SA mean"],
    );
    for row in &result.rows {
        table.add_row(vec![
            row.kind.to_string(),
            format!("2^{}", row.batch_size.trailing_zeros()),
            row.expected_width.to_string(),
            fmt_rate(row.lsm.min),
            fmt_rate(row.lsm.max),
            fmt_rate(row.lsm.harmonic_mean),
            fmt_rate(row.sa.harmonic_mean),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_rows_for_both_operations_and_widths() {
        let config = SweepConfig {
            total_elements: 1 << 11,
            batch_sizes: vec![1 << 9],
            seed: 7,
        };
        let result = run(&config, &[8, 64], 3, 512);
        assert_eq!(result.rows.len(), 4); // 2 ops × 1 batch size × 2 widths
        for row in &result.rows {
            assert!(row.lsm.harmonic_mean > 0.0, "{:?}", row);
            assert!(row.sa.harmonic_mean > 0.0);
        }
        assert_eq!(render(&result).num_rows(), 4);
    }

    #[test]
    fn wider_ranges_are_slower() {
        // Shape check from Table IV: L = 1024-style wide queries are much
        // slower than L = 8 because far more candidates must be validated.
        let config = SweepConfig {
            total_elements: 1 << 12,
            batch_sizes: vec![1 << 10],
            seed: 8,
        };
        let result = run(&config, &[4, 256], 2, 256);
        let narrow = result
            .rows
            .iter()
            .find(|r| r.kind == QueryKind::Count && r.expected_width == 4)
            .unwrap();
        let wide = result
            .rows
            .iter()
            .find(|r| r.kind == QueryKind::Count && r.expected_width == 256)
            .unwrap();
        assert!(
            narrow.lsm.harmonic_mean > wide.lsm.harmonic_mean,
            "narrow {} should beat wide {}",
            narrow.lsm.harmonic_mean,
            wide.lsm.harmonic_mean
        );
    }

    #[test]
    fn count_is_not_slower_than_range() {
        // Count avoids the value gather and the final compaction, so it
        // should be at least as fast as range for the same configuration.
        let config = SweepConfig {
            total_elements: 1 << 12,
            batch_sizes: vec![1 << 10],
            seed: 9,
        };
        let result = run(&config, &[64], 2, 512);
        let count = result
            .rows
            .iter()
            .find(|r| r.kind == QueryKind::Count)
            .unwrap();
        let range = result
            .rows
            .iter()
            .find(|r| r.kind == QueryKind::Range)
            .unwrap();
        assert!(count.lsm.harmonic_mean >= range.lsm.harmonic_mean * 0.7);
    }
}
