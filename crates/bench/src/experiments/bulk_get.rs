//! The paper's "PCIe tax" argument, measured: individual `get`s pay a
//! fixed per-call cost (on real hardware, a PCIe round trip and a kernel
//! launch; here, dispatch and per-query descent work), while
//! [`gpu_lsm::GpuLsm::bulk_get`] amortizes it — queries are sorted once,
//! marched through each level in fixed-size groups sharing one fence
//! descent, and resolved with a coalesced block sweep.
//!
//! Three questions, three measurements:
//!
//! 1. **single-get latency** — amortized µs per query when queries are
//!    issued one call at a time, for the LSM, the sorted array and the
//!    cuckoo hash;
//! 2. **bulk throughput** — M queries/s for one 100k-query `bulk_get`
//!    against the batch lookup paths of both baselines;
//! 3. **break-even batch size** — sweeping batch sizes upward, the
//!    smallest batch at which the LSM's bulk path matches each baseline's
//!    batch-lookup rate at the same size.  Below it, per-call overhead
//!    (and the baselines' flatter memory layouts) win; above it, the
//!    shared descents and block dedup do.

use gpu_baselines::{CuckooHashTable, SortedArray};
use gpu_lsm::GpuLsm;
use lsm_workloads::{existing_lookups, unique_random_pairs};

use super::experiment_device;
use crate::measure::{queries_per_sec_m, time_once};
use crate::report::{fmt_rate, Table};

/// Rates (M queries/s) of one backend across the swept batch sizes.
#[derive(Debug, Clone)]
pub struct BackendSweep {
    /// Backend label as rendered.
    pub name: &'static str,
    /// Amortized single-query latency in µs (one call per query).
    pub single_get_us: f64,
    /// One rate per entry of [`BulkGetResult::batch_sizes`].
    pub rates: Vec<f64>,
}

/// Full experiment result.
#[derive(Debug, Clone)]
pub struct BulkGetResult {
    /// Swept batch sizes (powers of two up to the full query count).
    pub batch_sizes: Vec<usize>,
    /// LSM `bulk_get`, then the sorted-array and cuckoo batch lookups.
    pub backends: Vec<BackendSweep>,
    /// Smallest swept batch size at which the LSM bulk rate reaches the
    /// sorted array's rate at the same size (`None` = never caught up).
    pub break_even_vs_sa: Option<usize>,
    /// Same against the cuckoo hash.
    pub break_even_vs_cuckoo: Option<usize>,
    /// Total resident elements.
    pub total_elements: usize,
}

/// Amortized per-call latency (µs/query) of issuing `probes` single-query
/// calls through `lookup`.
fn single_get_us(probes: &[u32], mut lookup: impl FnMut(&[u32])) -> f64 {
    let (_, elapsed) = time_once(|| {
        for &q in probes {
            lookup(std::slice::from_ref(&q));
        }
    });
    elapsed.as_secs_f64() * 1e6 / probes.len() as f64
}

/// Median-of-3 rate (M queries/s) of `lookup` over each prefix of
/// `queries` named in `batch_sizes`.
fn sweep_rates(queries: &[u32], batch_sizes: &[usize], mut lookup: impl FnMut(&[u32])) -> Vec<f64> {
    batch_sizes
        .iter()
        .map(|&n| {
            let batch = &queries[..n];
            let mut rates: Vec<f64> = (0..3)
                .map(|_| {
                    let (_, elapsed) = time_once(|| lookup(batch));
                    queries_per_sec_m(n, elapsed)
                })
                .collect();
            rates.sort_unstable_by(f64::total_cmp);
            rates[1]
        })
        .collect()
}

/// Smallest swept batch size at which `lsm` reaches `baseline` (both
/// indexed like `batch_sizes`).
fn break_even(batch_sizes: &[usize], lsm: &[f64], baseline: &[f64]) -> Option<usize> {
    batch_sizes
        .iter()
        .zip(lsm.iter().zip(baseline))
        .find(|(_, (l, b))| l >= b)
        .map(|(&n, _)| n)
}

/// Run the experiment: `total_elements` resident pairs, bulk batches swept
/// from 1 to `max_batch` queries (all present keys — the regime where
/// every level must actually be searched).
pub fn run(total_elements: usize, max_batch: usize, seed: u64) -> BulkGetResult {
    let device = experiment_device();
    let pairs = unique_random_pairs(total_elements, seed);
    let resident_keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
    // 11 batches of n/11 put elements on levels 0, 1 and 3 — a realistic
    // multi-level occupancy rather than the single-level best case.
    let batch_size = (total_elements / 11).max(1);
    let lsm = GpuLsm::bulk_build(device.clone(), batch_size, &pairs).expect("bulk build");
    let sa = SortedArray::bulk_build(device.clone(), &pairs);
    let cuckoo = CuckooHashTable::bulk_build(device, &pairs);

    let queries = existing_lookups(&resident_keys, max_batch, seed ^ 0xB61);
    let mut batch_sizes: Vec<usize> = std::iter::successors(Some(1usize), |&n| Some(n * 4))
        .take_while(|&n| n < max_batch)
        .collect();
    batch_sizes.push(max_batch);

    // Per-call latency is amortized over a fixed probe count, large enough
    // to swamp timer resolution but far below the sweep sizes.
    let probes = &queries[..queries.len().min(2_000)];
    let backends = vec![
        BackendSweep {
            name: "lsm bulk_get",
            single_get_us: single_get_us(probes, |q| {
                lsm.lookup(q);
            }),
            rates: sweep_rates(&queries, &batch_sizes, |q| {
                lsm.bulk_get(q);
            }),
        },
        BackendSweep {
            name: "sorted array",
            single_get_us: single_get_us(probes, |q| {
                sa.lookup(q);
            }),
            rates: sweep_rates(&queries, &batch_sizes, |q| {
                sa.lookup(q);
            }),
        },
        BackendSweep {
            name: "cuckoo hash",
            single_get_us: single_get_us(probes, |q| {
                cuckoo.lookup(q);
            }),
            rates: sweep_rates(&queries, &batch_sizes, |q| {
                cuckoo.lookup(q);
            }),
        },
    ];

    let break_even_vs_sa = break_even(&batch_sizes, &backends[0].rates, &backends[1].rates);
    let break_even_vs_cuckoo = break_even(&batch_sizes, &backends[0].rates, &backends[2].rates);
    BulkGetResult {
        batch_sizes,
        backends,
        break_even_vs_sa,
        break_even_vs_cuckoo,
        total_elements,
    }
}

/// Render the sweep as one row per backend, one column per batch size.
pub fn render(result: &BulkGetResult) -> Table {
    let mut header: Vec<String> = vec!["backend".into(), "single-get µs".into()];
    header.extend(result.batch_sizes.iter().map(|n| format!("{n}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Bulk-get amortization: M queries/s by batch size",
        &header_refs,
    );
    for backend in &result.backends {
        let mut row = vec![
            backend.name.to_string(),
            format!("{:.2}", backend.single_get_us),
        ];
        row.extend(backend.rates.iter().map(|&r| fmt_rate(r)));
        table.add_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_sweeps_and_break_even() {
        let result = run(1 << 12, 1 << 10, 7);
        assert_eq!(result.backends.len(), 3);
        assert_eq!(*result.batch_sizes.last().unwrap(), 1 << 10);
        for backend in &result.backends {
            assert_eq!(backend.rates.len(), result.batch_sizes.len());
            assert!(backend.rates.iter().all(|&r| r > 0.0));
            assert!(backend.single_get_us > 0.0);
        }
        let table = render(&result);
        assert_eq!(table.num_rows(), 3);
    }

    #[test]
    fn break_even_finds_first_crossing() {
        let sizes = [1, 4, 16];
        assert_eq!(
            break_even(&sizes, &[1.0, 5.0, 9.0], &[2.0, 4.0, 8.0]),
            Some(4)
        );
        assert_eq!(break_even(&sizes, &[1.0, 1.0, 1.0], &[2.0, 4.0, 8.0]), None);
        assert_eq!(
            break_even(&sizes, &[3.0, 5.0, 9.0], &[2.0, 4.0, 8.0]),
            Some(1)
        );
    }
}
