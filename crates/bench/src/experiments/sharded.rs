//! Shard-scaling experiment: service throughput of the sharded LSM under
//! concurrent mixed update/query traffic, versus the single-lock wrapper.
//!
//! This is beyond the paper (whose experiments are single-phase on one
//! structure): it measures the serving-system question — how does sustained
//! mixed-traffic throughput change as the key space is split across more
//! independently locked shards?  On a multi-core host, update throughput
//! should grow with the shard count until the core count or the batch split
//! overhead binds; on a single-core host the curve is flat and the
//! experiment degrades to a shard-overhead measurement (both outcomes are
//! informative, which is why the CI gate tracks the single-thread sharded
//! insert rate rather than this concurrent sweep).

use gpu_lsm::{AdmittedLsm, ConcurrentGpuLsm, LsmConfig, ShardRouter, ShardedLsm};
use lsm_workloads::{run_mixed_workload, MixedWorkloadConfig, MixedWorkloadReport, ZipfKeys};

use super::experiment_device;
use crate::report::{fmt_rate, Table};

/// One row of the shard-scaling sweep.
#[derive(Debug, Clone)]
pub struct ShardedRow {
    /// Shard count (0 denotes the single-lock `ConcurrentGpuLsm` baseline).
    pub shards: usize,
    /// The mixed-workload report for this configuration.
    pub report: MixedWorkloadReport,
}

/// Full shard-scaling result.
#[derive(Debug, Clone)]
pub struct ShardedResult {
    /// Baseline (single-lock wrapper) followed by one row per shard count.
    pub rows: Vec<ShardedRow>,
    /// The workload every row was driven with.
    pub config: MixedWorkloadConfig,
}

/// Run the shard-scaling sweep: the same mixed open-loop workload against
/// the single-lock wrapper and against the sharded service at each of
/// `shard_counts`.
pub fn run(shard_counts: &[usize], config: &MixedWorkloadConfig) -> ShardedResult {
    let mut rows = Vec::with_capacity(shard_counts.len() + 1);

    let baseline =
        ConcurrentGpuLsm::create(experiment_device(), config.batch_size).expect("valid batch size");
    rows.push(ShardedRow {
        shards: 0,
        report: run_mixed_workload(&baseline, config),
    });

    for &n in shard_counts {
        let sharded =
            ShardedLsm::new(experiment_device(), config.batch_size, n).expect("valid shard count");
        let report = run_mixed_workload(&sharded, config);
        sharded
            .check_invariants()
            .expect("sharded invariants after workload");
        rows.push(ShardedRow { shards: n, report });

        // The same shard count behind the pipelined admission queue:
        // writers hand batches to the background applier (which coalesces
        // adjacent same-shard sub-batches) instead of driving the carry
        // chains themselves.
        let admitted = AdmittedLsm::new(
            ShardedLsm::new(experiment_device(), config.batch_size, n).expect("valid shard count"),
        );
        let report = run_mixed_workload(&admitted, config);
        admitted
            .check_invariants()
            .expect("admitted invariants after workload");
        rows.push(ShardedRow { shards: n, report });

        // Skewed sweeps additionally measure the learned router at the
        // same shard count, with split points fitted from a sample of the
        // workload's key distribution.  Uniform sweeps skip this row: with
        // uniform keys the fitted router *is* (up to quantile noise) the
        // uniform one and the comparison measures nothing.
        if config.zipf_theta > 0.0 && n > 1 {
            let mut sampler =
                ZipfKeys::new(config.key_domain, config.zipf_theta, config.seed ^ 0xF17);
            let sample = sampler.sample_batch(1 << 16);
            let router = ShardRouter::fit(n, &sample).expect("fit learned router");
            let learned = ShardedLsm::with_router(
                experiment_device(),
                config.batch_size,
                router,
                LsmConfig::default(),
            )
            .expect("valid learned router");
            let report = run_mixed_workload(&learned, config);
            learned
                .check_invariants()
                .expect("learned invariants after workload");
            rows.push(ShardedRow { shards: n, report });
        }
    }

    ShardedResult {
        rows,
        config: config.clone(),
    }
}

/// Render the sweep as a table.
pub fn render(result: &ShardedResult) -> Table {
    let mut table = Table::new(
        &format!(
            "Shard scaling: mixed open-loop traffic ({}w/{}r threads, b = {})",
            result.config.writer_threads, result.config.reader_threads, result.config.batch_size
        ),
        &[
            "backend",
            "update M ops/s",
            "query M q/s",
            "lookups",
            "counts",
            "ranges",
            "upd p99 us",
            "lkp p99 us",
        ],
    );
    for row in &result.rows {
        let lat = &row.report.latency;
        table.add_row(vec![
            row.report.backend.clone(),
            fmt_rate(row.report.update_rate_m),
            fmt_rate(row.report.query_rate_m),
            row.report.lookups.to_string(),
            row.report.count_queries.to_string(),
            row.report.range_queries.to_string(),
            lat.update.snapshot_us().p99_us.to_string(),
            lat.lookup.snapshot_us().p99_us.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> MixedWorkloadConfig {
        MixedWorkloadConfig {
            writer_threads: 2,
            reader_threads: 1,
            batches_per_writer: 3,
            batch_size: 64,
            delete_fraction: 0.2,
            lookups_per_round: 32,
            intervals_per_round: 4,
            interval_width: 1 << 8,
            key_domain: 1 << 14,
            zipf_theta: 0.0,
            seed: 11,
            closed_loop: false,
            think_time_us: 0,
            max_outstanding: 0,
        }
    }

    #[test]
    fn sweep_produces_baseline_plus_two_rows_per_shard_count() {
        let result = run(&[1, 4], &tiny_config());
        // Baseline, then a synchronous and an admitted row per shard count.
        assert_eq!(result.rows.len(), 5);
        assert_eq!(result.rows[0].shards, 0);
        assert_eq!(result.rows[0].report.backend, "concurrent-lsm");
        assert_eq!(result.rows[1].report.backend, "sharded-lsm x1");
        assert_eq!(result.rows[2].report.backend, "admitted-lsm x1");
        assert_eq!(result.rows[3].report.backend, "sharded-lsm x4");
        assert_eq!(result.rows[4].report.backend, "admitted-lsm x4");
        for row in &result.rows {
            assert!(row.report.update_rate_m > 0.0, "{}", row.report.backend);
            assert_eq!(row.report.update_ops, 2 * 3 * 64);
        }
        assert_eq!(render(&result).num_rows(), 5);
    }
}
