//! # lsm-bench — the experiment harness for the GPU LSM reproduction
//!
//! One experiment runner per table and figure of the paper's evaluation
//! (§V), plus shared measurement and reporting helpers.  Every runner is a
//! plain function returning structured results, so the same code backs the
//! command-line binaries (`table2_insertion`, `fig4b_effective_rate`, …),
//! the Criterion micro-benchmarks, and the integration tests that check the
//! *shape* of each result (who wins, by roughly what factor).
//!
//! Absolute throughput is CPU wall-clock on the simulation substrate, not
//! K40c device time; each runner can also report the cost model's estimated
//! device time for context.  EXPERIMENTS.md records both next to the
//! paper's numbers.

#![warn(missing_docs)]

pub mod ci;
pub mod cli;
pub mod experiments;
pub mod measure;
pub mod report;

pub use cli::HarnessOptions;
pub use measure::{
    elements_per_sec_m, harmonic_mean, modelled_time_once, queries_per_sec_m, rate_m_from_seconds,
    time_once, RateStats,
};
pub use report::{write_csv, Table};
