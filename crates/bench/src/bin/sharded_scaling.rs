//! Shard-scaling sweep: mixed open-loop update/query traffic against the
//! single-lock `ConcurrentGpuLsm` and the `ShardedLsm` at 1, 2, 4 and 8
//! shards.  With `--zipf T` the workload keys are zipfian-skewed and the
//! sweep adds a learned-router row per multi-shard count.
//!
//! Usage: `cargo run --release -p lsm-bench --bin sharded_scaling -- [--scale N] [--csv PATH] [--zipf T]`

use lsm_bench::experiments::sharded;
use lsm_bench::HarnessOptions;
use lsm_workloads::MixedWorkloadConfig;

fn main() {
    let opts = HarnessOptions::from_env();
    // --scale shrinks the per-writer batch count: the default (scale 8)
    // drives each writer with 4 batches of 1Ki operations; --scale 2
    // raises that to 16, --scale 0 to 64.
    let batches = (64usize >> opts.scale.min(6)).max(4);
    let config = MixedWorkloadConfig {
        writer_threads: 2,
        reader_threads: 2,
        batches_per_writer: batches,
        batch_size: 1 << 10,
        delete_fraction: 0.2,
        lookups_per_round: 1 << 10,
        intervals_per_round: 32,
        interval_width: 1 << 14,
        key_domain: 1 << 24,
        zipf_theta: opts.zipf_theta,
        seed: opts.seed,
        ..MixedWorkloadConfig::default()
    };
    let result = sharded::run(&[1, 2, 4, 8], &config);
    let table = sharded::render(&result);
    println!("{}", table.render());
    if let Some(path) = &opts.csv {
        lsm_bench::write_csv(&table, path).expect("write csv");
        println!("wrote {}", path.display());
    }
    println!(
        "Note: shard speedups require a multi-core host; on one core the sweep measures sharding overhead only."
    );
}
