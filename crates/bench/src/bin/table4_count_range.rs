//! Regenerate Table IV: count and range query rates for expected result
//! widths L = 8 and L = 1024, GPU LSM vs. sorted array.
//!
//! Usage: `cargo run --release -p lsm-bench --bin table4_count_range -- [--scale N] [--csv PATH]`

use lsm_bench::experiments::table4;
use lsm_bench::{report, HarnessOptions};
use lsm_workloads::SweepConfig;

fn main() {
    let opts = HarnessOptions::from_env();
    // Paper: n = 2^24, b = 2^16 .. 2^20, L in {8, 1024}.
    let n_exp = 24u32.saturating_sub(opts.scale).max(10);
    let lo = 16u32.saturating_sub(opts.scale).max(7);
    let hi = 20u32.saturating_sub(opts.scale).max(lo);
    let config = SweepConfig {
        total_elements: 1 << n_exp,
        batch_sizes: (lo..=hi).map(|p| 1usize << p).collect(),
        seed: opts.seed,
    };
    let max_queries = 1 << 13;
    eprintln!(
        "Table IV sweep: n = {} elements, b in 2^{lo}..2^{hi}, L in {{8, 1024}}, {} queries per state",
        config.total_elements, max_queries
    );
    let result = table4::run(&config, &[8, 1024], 4, max_queries);
    let table = table4::render(&result);
    println!("{}", table.render());
    if let Some(path) = &opts.csv {
        report::write_csv(&table, path).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}
