//! Regenerate Fig. 4a: batch insertion time versus the number of resident
//! batches (the binary-counter sawtooth), b = 2^19 in the paper.
//!
//! Usage: `cargo run --release -p lsm-bench --bin fig4a_insertion_time -- [--scale N] [--csv PATH]`

use lsm_bench::experiments::fig4;
use lsm_bench::{report, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_env();
    let batch_size = 1usize << 19u32.saturating_sub(opts.scale).max(7);
    let num_batches = 64;
    eprintln!("Fig. 4a: b = {batch_size}, {num_batches} batch insertions");
    let points = fig4::run_fig4a(batch_size, num_batches, opts.seed);
    let table = fig4::render_fig4a(batch_size, &points);
    println!("{}", table.render());
    if let Some(path) = &opts.csv {
        report::write_csv(&table, path).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}
