//! Compare a current CI bench run against the committed baseline and fail
//! (exit 1) when any shared metric loses more than the tolerated fraction
//! of its throughput — or, for latency (`*_us`) metrics, when its value
//! grows past the tolerated fraction.
//!
//! Usage: `bench_compare <baseline.json> <current.json> [--tolerance 0.2]`

use lsm_bench::ci;

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut tolerance = 0.2f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--tolerance needs a value"));
                tolerance = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("bad --tolerance value: {v}")));
            }
            other => positional.push(other.to_string()),
        }
    }
    let [baseline_path, current_path] = positional.as_slice() else {
        usage("expected exactly two files: <baseline.json> <current.json>");
    };

    let baseline = read_metrics(baseline_path);
    let current = read_metrics(current_path);
    let report = ci::compare(&baseline, &current, tolerance);
    for name in ci::unmatched(&baseline, &current) {
        eprintln!("warning: metric not compared: {name}");
    }
    if report.is_empty() {
        eprintln!("error: baseline and current share no metrics");
        std::process::exit(1);
    }

    println!(
        "{:>24}  {:>12}  {:>12}  {:>8}",
        "metric", "baseline", "current", "ratio"
    );
    let mut regressions = 0;
    for c in &report {
        let flag = if c.regressed {
            "  REGRESSED"
        } else if ci::lower_is_better(&c.name) {
            "  (latency: lower is better)"
        } else {
            ""
        };
        println!(
            "{:>24}  {:>12.3}  {:>12.3}  {:>7.2}x{}",
            c.name, c.baseline, c.current, c.ratio, flag
        );
        if c.regressed {
            regressions += 1;
        }
    }
    if regressions > 0 {
        eprintln!(
            "FAIL: {regressions} metric(s) regressed more than {:.0}% vs baseline",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "OK: no metric regressed more than {:.0}% vs baseline",
        tolerance * 100.0
    );
}

fn read_metrics(path: &str) -> Vec<ci::Metric> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(1);
    });
    ci::parse_metrics(&text).unwrap_or_else(|e| {
        eprintln!("error: cannot parse {path}: {e}");
        std::process::exit(1);
    })
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("usage: bench_compare <baseline.json> <current.json> [--tolerance FRAC]");
    std::process::exit(2);
}
