//! Regenerate Table III: lookup rates for the "none exist" and "all exist"
//! scenarios, GPU LSM vs. sorted array vs. cuckoo hash.
//!
//! Usage: `cargo run --release -p lsm-bench --bin table3_lookup -- [--scale N] [--csv PATH]`

use lsm_bench::experiments::table3;
use lsm_bench::{report, HarnessOptions};
use lsm_workloads::SweepConfig;

fn main() {
    let opts = HarnessOptions::from_env();
    // Paper: n = 2^24, b = 2^16 .. 2^24.
    let hi = 24u32.saturating_sub(opts.scale).max(10);
    let lo = 16u32.saturating_sub(opts.scale).max(7);
    let config = SweepConfig {
        total_elements: 1 << hi,
        batch_sizes: (lo..=hi).map(|p| 1usize << p).collect(),
        seed: opts.seed,
    };
    let max_queries = (config.total_elements).min(1 << 20);
    eprintln!(
        "Table III sweep: n = {} elements, {} batch sizes, up to {} queries per state",
        config.total_elements,
        config.batch_sizes.len(),
        max_queries
    );
    let result = table3::run(&config, 8, max_queries);
    let table = table3::render(&result);
    println!("{}", table.render());
    println!(
        "(LSM/SA states sampled at {} resident-batch counts per batch size.)",
        result.r_samples
    );
    if let Some(path) = &opts.csv {
        report::write_csv(&table, path).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}
