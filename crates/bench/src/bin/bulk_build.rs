//! Regenerate the §V-B bulk-build comparison: GPU LSM vs. sorted array vs.
//! cuckoo hash table build rates.
//!
//! Usage: `cargo run --release -p lsm-bench --bin bulk_build -- [--scale N] [--csv PATH]`

use lsm_bench::experiments::bulk_build;
use lsm_bench::{report, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_env();
    let n_exp = 24u32.saturating_sub(opts.scale).max(12);
    let sizes: Vec<usize> = [n_exp.saturating_sub(2), n_exp.saturating_sub(1), n_exp]
        .iter()
        .map(|&p| 1usize << p)
        .collect();
    let batch_size = 1usize << 16u32.saturating_sub(opts.scale).max(8);

    let results: Vec<_> = sizes
        .iter()
        .map(|&n| {
            eprintln!("bulk build: n = {n}");
            bulk_build::run(n, batch_size, opts.seed)
        })
        .collect();
    let table = bulk_build::render(&results);
    println!("{}", table.render());
    for r in &results {
        println!(
            "n = {:>10}: LSM/cuckoo build ratio = {:.2}x (paper reports ~2x)",
            r.num_elements,
            r.lsm_rate / r.cuckoo_rate
        );
    }
    if let Some(path) = &opts.csv {
        report::write_csv(&table, path).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}
