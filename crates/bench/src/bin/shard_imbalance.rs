//! Shard-imbalance experiment: zipfian mixed traffic against the uniform
//! router, a learned router fitted from the key distribution, and an
//! adaptive service that discovers split points by rebalancing online.
//!
//! Usage: `cargo run --release -p lsm-bench --bin shard_imbalance -- [--scale N] [--csv PATH]`

use lsm_bench::experiments::imbalance;
use lsm_bench::HarnessOptions;
use lsm_workloads::MixedWorkloadConfig;

fn main() {
    let opts = HarnessOptions::from_env();
    // --scale shrinks the per-writer batch count, as in sharded_scaling.
    let batches = (64usize >> opts.scale.min(6)).max(4);
    let config = MixedWorkloadConfig {
        writer_threads: 2,
        reader_threads: 2,
        batches_per_writer: batches,
        batch_size: 1 << 10,
        delete_fraction: 0.2,
        lookups_per_round: 1 << 10,
        intervals_per_round: 32,
        interval_width: 1 << 14,
        key_domain: 1 << 24,
        zipf_theta: 0.99,
        seed: opts.seed,
        ..MixedWorkloadConfig::default()
    };
    let result = imbalance::run(8, &config);
    let table = imbalance::render(&result);
    println!("{}", table.render());
    if let Some(path) = &opts.csv {
        lsm_bench::write_csv(&table, path).expect("write csv");
        println!("wrote {}", path.display());
    }
    for row in &result.rows {
        println!(
            "{}: per-shard update ops {:?}",
            row.report.backend, row.per_shard_ops
        );
    }
}
