//! The "PCIe tax" experiment: single-get latency vs. bulk-get throughput
//! and the break-even batch size against the sorted-array and cuckoo-hash
//! baselines.
//!
//! Usage: `cargo run --release -p lsm-bench --bin bulk_get -- [--scale N] [--csv PATH]`

use lsm_bench::experiments::bulk_get;
use lsm_bench::{report, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_env();
    // Paper-shaped sizes: n = 2^24 resident elements, 100k-query bulk
    // batches; `--scale` shrinks n for small hosts.
    let n = 1usize << 24u32.saturating_sub(opts.scale).max(12);
    let max_batch = 100_000.min(n);
    eprintln!("bulk_get sweep: n = {n} elements, bulk batches up to {max_batch} queries");
    let result = bulk_get::run(n, max_batch, opts.seed);
    let table = bulk_get::render(&result);
    println!("{}", table.render());
    for (name, hit) in [
        ("sorted array", result.break_even_vs_sa),
        ("cuckoo hash", result.break_even_vs_cuckoo),
    ] {
        match hit {
            Some(b) => println!("break-even vs {name}: batch >= {b} queries"),
            None => println!("break-even vs {name}: not reached by {max_batch} queries"),
        }
    }
    if let Some(path) = &opts.csv {
        report::write_csv(&table, path).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}
