//! Run the CI bench-regression suite and write its results as JSON.
//!
//! Usage: `cargo run --release -p lsm-bench --bin bench_ci -- [--out PATH] [--repeats N]`
//!
//! Defaults write `BENCH_ci.json` in the current directory; CI uploads that
//! file as an artifact and feeds it to `bench_compare` together with the
//! committed `BENCH_baseline.json`.  Regenerate the baseline with
//! `--out BENCH_baseline.json` after a deliberate performance change.

use std::path::PathBuf;

use lsm_bench::ci;

fn main() {
    let mut out = PathBuf::from("BENCH_ci.json");
    let mut repeats = ci::CI_REPEATS;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                let v = args.next().unwrap_or_else(|| usage("--out needs a path"));
                out = PathBuf::from(v);
            }
            "--repeats" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--repeats needs a value"));
                repeats = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("bad --repeats value: {v}")));
            }
            other => usage(&format!("unknown option: {other}")),
        }
    }

    eprintln!("running CI bench suite ({repeats} repeats per metric, median kept)...");
    let metrics = ci::run_suite(repeats);
    for m in &metrics {
        let unit = if ci::lower_is_better(&m.name) {
            "us (lower is better)"
        } else {
            "M elements/s"
        };
        println!("{:>24}  {:10.3} {unit}", m.name, m.rate);
    }
    let json = ci::to_json(&metrics, repeats);
    std::fs::write(&out, json).expect("write bench JSON");
    eprintln!("wrote {}", out.display());
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("usage: bench_ci [--out PATH] [--repeats N]");
    std::process::exit(2);
}
