//! Regenerate Table II: insertion rates vs. batch size for the GPU LSM and
//! the sorted array, plus the cuckoo bulk-build rate.
//!
//! Usage: `cargo run --release -p lsm-bench --bin table2_insertion -- [--scale N] [--csv PATH]`

use lsm_bench::experiments::table2;
use lsm_bench::{report, HarnessOptions};
use lsm_workloads::scaled_batch_sizes;

fn main() {
    let opts = HarnessOptions::from_env();
    let mut config = scaled_batch_sizes(opts.scale);
    config.seed = opts.seed;
    eprintln!(
        "Table II sweep: n = {} elements, {} batch sizes, scale 2^-{}",
        config.total_elements,
        config.batch_sizes.len(),
        opts.scale
    );
    let result = table2::run(&config, 24);
    let table = table2::render(&result);
    println!("{}", table.render());
    println!(
        "Cuckoo hash bulk build (80% load factor): {:.1} M elements/s",
        result.cuckoo_build_rate
    );
    println!(
        "Overall harmonic means - GPU LSM: {:.1} M elements/s, GPU SA: {:.1} M elements/s ({:.1}x)",
        result.lsm_overall_mean,
        result.sa_overall_mean,
        result.lsm_overall_mean / result.sa_overall_mean
    );
    println!(
        "(Sorted-array rates sampled at {} resident sizes per batch size.)",
        result.sa_samples
    );
    if let Some(path) = &opts.csv {
        report::write_csv(&table, path).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}
