//! Regenerate the §V-D cleanup experiments: cleanup rate versus the stale
//! fraction (10 % and 50 % removals), cleanup versus rebuild, and the query
//! speed-up obtained by cleaning before a large query workload.
//!
//! Usage: `cargo run --release -p lsm-bench --bin cleanup_experiment -- [--scale N] [--csv PATH]`

use lsm_bench::experiments::cleanup;
use lsm_bench::{report, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_env();
    // Paper: n = (2^6 - 1)·b with b = 2^20, and (2^7 - 1)·b with b = 2^19.
    let b_exp_large = 20u32.saturating_sub(opts.scale).max(8);
    let b_exp_small = 19u32.saturating_sub(opts.scale).max(7);

    let mut rate_results = Vec::new();
    for (b_exp, num_batches) in [(b_exp_large, 63usize), (b_exp_small, 127usize)] {
        for delete_fraction in [0.1, 0.5] {
            let b = 1usize << b_exp;
            eprintln!(
                "cleanup rate: b = {b}, {num_batches} batches, {:.0}% deletions",
                delete_fraction * 100.0
            );
            rate_results.push(cleanup::run_cleanup_rate(
                b,
                num_batches,
                delete_fraction,
                opts.seed,
            ));
        }
    }
    let rates_table = cleanup::render_rates(&rate_results);
    println!("{}", rates_table.render());

    // Query speed-up experiment (paper: b = 2^18, n = (2^7 - 1)·b, 10 %
    // removals, 32 M lookups).
    let b = 1usize << 18u32.saturating_sub(opts.scale).max(7);
    let num_queries = (32usize << 20) >> opts.scale.min(20);
    eprintln!("cleanup query speed-up: b = {b}, 127 batches, {num_queries} lookups");
    let q = cleanup::run_cleanup_query_speedup(b, 127, 0.1, num_queries.max(1024), opts.seed);
    let q_table = cleanup::render_query_speedup(&q);
    println!("{}", q_table.render());

    if let Some(path) = &opts.csv {
        report::write_csv(&rates_table, path).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}
