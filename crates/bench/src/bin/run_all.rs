//! Run every experiment at a reduced scale and print all tables — a single
//! command that regenerates the whole evaluation section.
//!
//! Usage: `cargo run --release -p lsm-bench --bin run_all -- [--scale N]`

use lsm_bench::experiments::{bulk_build, cleanup, fig4, table1, table2, table3, table4};
use lsm_bench::HarnessOptions;
use lsm_workloads::{scaled_batch_sizes, SweepConfig};

fn main() {
    let opts = HarnessOptions::from_env();
    let scale = opts.scale.max(8); // run_all always uses a reduced scale

    println!("# GPU LSM reproduction — full experiment sweep (scale 2^-{scale})\n");

    // Table I.
    let sizes: Vec<usize> = (14..=18).map(|p| 1usize << p).collect();
    let t1 = table1::run(&sizes, 1 << 9, 1 << 14, opts.seed);
    println!("{}", table1::render(&t1).render());

    // Table II.
    let mut cfg = scaled_batch_sizes(scale);
    cfg.seed = opts.seed;
    let t2 = table2::run(&cfg, 16);
    println!("{}", table2::render(&t2).render());
    println!(
        "Cuckoo bulk build: {:.1} M elements/s; LSM vs SA overall mean: {:.1}x\n",
        t2.cuckoo_build_rate,
        t2.lsm_overall_mean / t2.sa_overall_mean
    );

    // Fig. 4a and 4b.
    let b_fig4a = 1usize << 19u32.saturating_sub(scale).max(7);
    let fig4a = fig4::run_fig4a(b_fig4a, 64, opts.seed);
    println!("{}", fig4::render_fig4a(b_fig4a, &fig4a).render());
    let total = 1usize << 27u32.saturating_sub(scale).max(12);
    let mut series = Vec::new();
    for p in [17u32, 18, 19, 20] {
        let b = 1usize << p.saturating_sub(scale).max(7);
        series.push(fig4::run_fig4b_lsm(b, (total / b).max(1), opts.seed));
        series.push(fig4::run_fig4b_sa(b, (total / b).max(1), opts.seed));
    }
    println!("{}", fig4::render_fig4b(&series).render());

    // Table III.
    let n3 = 1usize << 24u32.saturating_sub(scale).max(10);
    let cfg3 = SweepConfig {
        total_elements: n3,
        batch_sizes: (16u32.saturating_sub(scale).max(7)..=24u32.saturating_sub(scale).max(10))
            .map(|p| 1usize << p)
            .collect(),
        seed: opts.seed,
    };
    let t3 = table3::run(&cfg3, 6, n3.min(1 << 18));
    println!("{}", table3::render(&t3).render());

    // Table IV.
    let cfg4 = SweepConfig {
        total_elements: n3,
        batch_sizes: (16u32.saturating_sub(scale).max(7)..=20u32.saturating_sub(scale).max(8))
            .map(|p| 1usize << p)
            .collect(),
        seed: opts.seed,
    };
    let t4 = table4::run(&cfg4, &[8, 1024], 3, 1 << 12);
    println!("{}", table4::render(&t4).render());

    // Bulk build.
    let bb = bulk_build::run(
        1usize << 24u32.saturating_sub(scale).max(12),
        1 << 10,
        opts.seed,
    );
    println!("{}", bulk_build::render(&[bb]).render());

    // Cleanup.
    let b_cl = 1usize << 20u32.saturating_sub(scale).max(8);
    let rates = vec![
        cleanup::run_cleanup_rate(b_cl, 63, 0.1, opts.seed),
        cleanup::run_cleanup_rate(b_cl, 63, 0.5, opts.seed),
    ];
    println!("{}", cleanup::render_rates(&rates).render());
    let q = cleanup::run_cleanup_query_speedup(
        1usize << 18u32.saturating_sub(scale).max(7),
        127,
        0.1,
        1 << 15,
        opts.seed,
    );
    println!("{}", cleanup::render_query_speedup(&q).render());
}
