//! Regenerate Table I empirically: per-item update and per-query lookup
//! costs as the structure size doubles, with fitted growth exponents
//! (≈ 0 for polylogarithmic costs, ≈ 1 for linear costs).
//!
//! Usage: `cargo run --release -p lsm-bench --bin table1_scaling -- [--scale N] [--csv PATH]`

use lsm_bench::experiments::table1;
use lsm_bench::{report, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_env();
    let max_exp = 22u32.saturating_sub(opts.scale).max(14);
    let sizes: Vec<usize> = (max_exp - 4..=max_exp).map(|p| 1usize << p).collect();
    let batch_size = 1usize << 12u32.saturating_sub(opts.scale / 2).max(8);
    let num_queries = 1usize << 15;
    eprintln!(
        "Table I scaling study: n in {:?}, b = {batch_size}, {num_queries} queries per point",
        sizes
    );
    let result = table1::run(&sizes, batch_size, num_queries, opts.seed);
    let table = table1::render(&result);
    println!("{}", table.render());
    println!("Expected shapes: SA insert exponent ~1 (linear), LSM insert/lookup exponents near 0 (polylog), cuckoo lookup ~0 (constant).");
    if let Some(path) = &opts.csv {
        report::write_csv(&table, path).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}
