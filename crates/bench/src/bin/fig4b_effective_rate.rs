//! Regenerate Fig. 4b: effective insertion rate versus the total number of
//! inserted elements, for batch sizes 128K, 256K, 512K and 1M (scaled), GPU
//! LSM and sorted array.
//!
//! Usage: `cargo run --release -p lsm-bench --bin fig4b_effective_rate -- [--scale N] [--csv PATH]`

use lsm_bench::experiments::fig4;
use lsm_bench::{report, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_env();
    // Paper: b in {2^17, 2^18, 2^19, 2^20}, inserting up to 2^27 elements.
    let total_exp = 27u32.saturating_sub(opts.scale).max(12);
    let total = 1usize << total_exp;
    let batch_exps: Vec<u32> = (17..=20)
        .map(|p: u32| p.saturating_sub(opts.scale).max(7))
        .collect();

    let mut series = Vec::new();
    for &be in &batch_exps {
        let b = 1usize << be;
        let num_batches = (total / b).max(1);
        eprintln!("Fig. 4b: GPU LSM b = {b}, {num_batches} batches");
        series.push(fig4::run_fig4b_lsm(b, num_batches, opts.seed));
    }
    for &be in &batch_exps {
        let b = 1usize << be;
        let num_batches = (total / b).max(1);
        eprintln!("Fig. 4b: Sorted Array b = {b}, {num_batches} batches");
        series.push(fig4::run_fig4b_sa(b, num_batches, opts.seed));
    }

    let table = fig4::render_fig4b(&series);
    println!("{}", table.render());
    if let Some(path) = &opts.csv {
        report::write_csv(&table, path).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}
