//! Rate and timing helpers shared by every experiment.
//!
//! The paper reports element and query rates in "M elements/s" and
//! summarises sweeps with *harmonic* means (Table II/III), which weight each
//! configuration by the time it takes rather than by its rate — the right
//! mean for "how long does a fixed amount of work take on average".

use std::time::{Duration, Instant};

use gpu_sim::Device;

/// Minimum / maximum / harmonic-mean statistics of a set of rates,
/// the summary the paper reports per batch size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateStats {
    /// Smallest observed rate.
    pub min: f64,
    /// Largest observed rate.
    pub max: f64,
    /// Harmonic mean of all observed rates.
    pub harmonic_mean: f64,
    /// Number of observations.
    pub count: usize,
}

impl RateStats {
    /// Summarise a set of rates.  Returns zeros for an empty slice.
    pub fn from_rates(rates: &[f64]) -> Self {
        if rates.is_empty() {
            return RateStats {
                min: 0.0,
                max: 0.0,
                harmonic_mean: 0.0,
                count: 0,
            };
        }
        RateStats {
            min: rates.iter().copied().fold(f64::INFINITY, f64::min),
            max: rates.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            harmonic_mean: harmonic_mean(rates),
            count: rates.len(),
        }
    }
}

/// Harmonic mean of a set of rates (0 if empty or if any rate is 0).
pub fn harmonic_mean(rates: &[f64]) -> f64 {
    if rates.is_empty() || rates.iter().any(|&r| r <= 0.0) {
        return 0.0;
    }
    rates.len() as f64 / rates.iter().map(|r| 1.0 / r).sum::<f64>()
}

/// Time a closure once, returning its result and the elapsed wall-clock time.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed())
}

/// Measure a closure's *modelled device time* in seconds: the growth of the
/// device's estimated time (cost model applied to the recorded memory
/// traffic) across the call.
///
/// Unlike wall-clock time this is a pure function of the traffic the
/// operation records, so it is deterministic and immune to host load —
/// which is why the shape tests assert on it (see
/// `tests/experiment_shapes.rs`).  Traffic recorded by *other* threads
/// touching the same device during `f` would be attributed to `f`, so
/// callers measure on a device they exclusively own (every experiment
/// creates its own).
pub fn modelled_time_once<R>(device: &Device, f: impl FnOnce() -> R) -> (R, f64) {
    let before = device.estimated_time().total_seconds;
    let result = f();
    (result, device.estimated_time().total_seconds - before)
}

/// Convert an element count and modelled seconds into "M elements/s".
pub fn rate_m_from_seconds(elements: usize, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return f64::INFINITY;
    }
    elements as f64 / seconds / 1.0e6
}

/// Convert an element count and duration into "M elements/s".
pub fn elements_per_sec_m(elements: usize, elapsed: Duration) -> f64 {
    if elapsed.is_zero() {
        return f64::INFINITY;
    }
    elements as f64 / elapsed.as_secs_f64() / 1.0e6
}

/// Convert a query count and duration into "M queries/s" (same formula,
/// kept separate for readability at call sites).
pub fn queries_per_sec_m(queries: usize, elapsed: Duration) -> f64 {
    elements_per_sec_m(queries, elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_matches_hand_computation() {
        // HM of 2 and 6 is 3.
        assert!((harmonic_mean(&[2.0, 6.0]) - 3.0).abs() < 1e-12);
        assert!((harmonic_mean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_is_dominated_by_slow_rates() {
        let hm = harmonic_mean(&[1.0, 1000.0]);
        assert!(hm < 2.0);
    }

    #[test]
    fn harmonic_mean_edge_cases() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert_eq!(harmonic_mean(&[0.0, 5.0]), 0.0);
    }

    #[test]
    fn rate_stats_summarise_min_max_mean() {
        let stats = RateStats::from_rates(&[10.0, 20.0, 40.0]);
        assert_eq!(stats.min, 10.0);
        assert_eq!(stats.max, 40.0);
        assert_eq!(stats.count, 3);
        assert!(stats.harmonic_mean > 10.0 && stats.harmonic_mean < 40.0);
        let empty = RateStats::from_rates(&[]);
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn rate_conversion() {
        let rate = elements_per_sec_m(2_000_000, Duration::from_secs(1));
        assert!((rate - 2.0).abs() < 1e-9);
        assert!(elements_per_sec_m(1, Duration::ZERO).is_infinite());
        assert_eq!(
            queries_per_sec_m(500_000, Duration::from_millis(500)),
            elements_per_sec_m(500_000, Duration::from_millis(500))
        );
    }

    #[test]
    fn modelled_time_tracks_recorded_traffic_only() {
        let device = Device::new(gpu_sim::DeviceConfig::small());
        let ((), idle) = modelled_time_once(&device, || {
            std::thread::sleep(Duration::from_millis(2)); // no device traffic
        });
        assert_eq!(idle, 0.0, "wall time without traffic is not modelled time");
        let data: Vec<u64> = (0..1 << 12).collect();
        let (sum1, t1) = modelled_time_once(&device, || device.map("m", &data, |_, &x| x).len());
        let (sum2, t2) = modelled_time_once(&device, || {
            device.map("m", &data, |_, &x| x).len() + device.map("m", &data, |_, &x| x).len()
        });
        assert_eq!(sum1, 1 << 12);
        assert_eq!(sum2, 2 << 12);
        assert!(t1 > 0.0);
        assert!(
            (t2 / t1 - 2.0).abs() < 1e-9,
            "twice the traffic, twice the time"
        );
        assert!(rate_m_from_seconds(1_000_000, 1.0) == 1.0);
        assert!(rate_m_from_seconds(5, 0.0).is_infinite());
    }

    #[test]
    fn time_once_returns_result_and_duration() {
        let (value, elapsed) = time_once(|| {
            std::thread::sleep(Duration::from_millis(2));
            7
        });
        assert_eq!(value, 7);
        assert!(elapsed >= Duration::from_millis(1));
    }
}
