//! Query-set generators for the lookup, count and range experiments.

use gpu_lsm::MAX_KEY;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::keygen::unique_keys_disjoint_from;

/// Lookup queries that all exist: a random sample (with replacement) of the
/// resident keys, `num_queries` long (Table III, "all existing").
pub fn existing_lookups(resident_keys: &[u32], num_queries: usize, seed: u64) -> Vec<u32> {
    assert!(!resident_keys.is_empty(), "need at least one resident key");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_queries)
        .map(|_| resident_keys[rng.gen_range(0..resident_keys.len())])
        .collect()
}

/// Lookup queries none of which exist (Table III, "none existing").
pub fn missing_lookups(resident_keys: &[u32], num_queries: usize, seed: u64) -> Vec<u32> {
    unique_keys_disjoint_from(num_queries, resident_keys, seed)
}

/// Interval queries whose expected number of resident keys is `expected_width`
/// (the paper's `L`), assuming `num_resident` keys uniform over the 31-bit
/// domain (Table IV uses L = 8 and L = 1024).
///
/// The interval width is `L · domain / n`; query start points are uniform.
pub fn range_queries_with_expected_width(
    num_resident: usize,
    expected_width: usize,
    num_queries: usize,
    seed: u64,
) -> Vec<(u32, u32)> {
    assert!(num_resident > 0, "need a non-empty resident set");
    let domain = MAX_KEY as u64 + 1;
    let width = ((expected_width as u128 * domain as u128) / num_resident as u128)
        .min(domain as u128 - 1) as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_queries)
        .map(|_| {
            let start = rng.gen_range(0..domain - width) as u32;
            (start, (start as u64 + width).min(MAX_KEY as u64) as u32)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keygen::unique_random_keys;

    #[test]
    fn existing_lookups_are_members() {
        let keys = unique_random_keys(1000, 1);
        let set: std::collections::HashSet<_> = keys.iter().copied().collect();
        let queries = existing_lookups(&keys, 500, 2);
        assert_eq!(queries.len(), 500);
        assert!(queries.iter().all(|q| set.contains(q)));
    }

    #[test]
    fn missing_lookups_are_not_members() {
        let keys = unique_random_keys(1000, 1);
        let set: std::collections::HashSet<_> = keys.iter().copied().collect();
        let queries = missing_lookups(&keys, 500, 2);
        assert_eq!(queries.len(), 500);
        assert!(queries.iter().all(|q| !set.contains(q)));
    }

    #[test]
    fn range_queries_have_requested_expected_width() {
        // With n uniform keys and interval width L·D/n, the mean number of
        // keys per interval should be close to L.
        let n = 50_000;
        let l = 64;
        let keys = {
            let mut k = unique_random_keys(n, 3);
            k.sort_unstable();
            k
        };
        let queries = range_queries_with_expected_width(n, l, 400, 4);
        let mean: f64 = queries
            .iter()
            .map(|&(a, b)| {
                let lo = keys.partition_point(|&k| k < a);
                let hi = keys.partition_point(|&k| k <= b);
                (hi - lo) as f64
            })
            .sum::<f64>()
            / queries.len() as f64;
        assert!(
            (mean - l as f64).abs() < l as f64 * 0.25,
            "mean width {mean} too far from target {l}"
        );
    }

    #[test]
    fn range_bounds_are_ordered_and_in_domain() {
        let queries = range_queries_with_expected_width(1000, 8, 200, 9);
        assert!(queries.iter().all(|&(a, b)| a <= b && b <= MAX_KEY));
    }

    #[test]
    fn query_generation_is_deterministic() {
        let keys = unique_random_keys(100, 5);
        assert_eq!(
            existing_lookups(&keys, 50, 6),
            existing_lookups(&keys, 50, 6)
        );
        assert_eq!(
            range_queries_with_expected_width(100, 8, 50, 7),
            range_queries_with_expected_width(100, 8, 50, 7)
        );
    }
}
