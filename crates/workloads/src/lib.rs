//! # lsm-workloads — workload generators for the GPU LSM experiments
//!
//! The paper's evaluation (§V) drives the data structures with uniformly
//! random 31-bit keys, incremental batch-insertion sequences, lookup query
//! sets in which either none or all of the queried keys exist, and
//! count/range queries whose expected result width `L` is controlled by the
//! query interval width.  This crate generates those workloads
//! deterministically from a seed so every experiment is reproducible.

#![warn(missing_docs)]

pub mod batches;
pub mod distributions;
pub mod keygen;
pub mod queries;
pub mod service;
pub mod sweep;

pub use batches::{mixed_batches, pure_insert_batches, BatchSequence};
pub use distributions::{hot_set_batches, sorted_run, ZipfKeys};
pub use keygen::{random_pairs, unique_random_keys, unique_random_pairs};
pub use queries::{existing_lookups, missing_lookups, range_queries_with_expected_width};
pub use service::{
    generate_query_spans, generate_update_batch, generate_zipf_update_batch, run_mixed_workload,
    LsmBackend, MixedLatencies, MixedWorkloadConfig, MixedWorkloadReport,
};
pub use sweep::{paper_batch_sizes, scaled_batch_sizes, SweepConfig};
