//! Random key and key–value generation over the 31-bit key domain.

use gpu_lsm::MAX_KEY;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate `n` random (not necessarily distinct) key–value pairs with keys
/// uniform over the 31-bit domain.
pub fn random_pairs(n: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (rng.gen_range(0..=MAX_KEY), rng.gen::<u32>()))
        .collect()
}

/// Generate `n` *distinct* random keys, uniform over the 31-bit domain.
///
/// Distinct keys make "all queries exist" / "none exist" lookup workloads
/// (Table III) and expected-range-width calculations (Table IV) exact.
pub fn unique_random_keys(n: usize, seed: u64) -> Vec<u32> {
    assert!(
        (n as u64) <= MAX_KEY as u64 / 2,
        "cannot draw {n} distinct keys from the 31-bit domain comfortably"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut keys = Vec::with_capacity(n);
    while keys.len() < n {
        let k = rng.gen_range(0..=MAX_KEY);
        if seen.insert(k) {
            keys.push(k);
        }
    }
    keys
}

/// Generate `n` distinct-key random pairs.
pub fn unique_random_pairs(n: usize, seed: u64) -> Vec<(u32, u32)> {
    let keys = unique_random_keys(n, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD_EF01);
    keys.into_iter().map(|k| (k, rng.gen::<u32>())).collect()
}

/// Generate `n` distinct keys that do **not** collide with `existing`
/// (used for the "none exist" lookup scenario).
pub fn unique_keys_disjoint_from(n: usize, existing: &[u32], seed: u64) -> Vec<u32> {
    let existing: std::collections::HashSet<u32> = existing.iter().copied().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut keys = Vec::with_capacity(n);
    while keys.len() < n {
        let k = rng.gen_range(0..=MAX_KEY);
        if !existing.contains(&k) && seen.insert(k) {
            keys.push(k);
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_pairs_are_in_domain_and_deterministic() {
        let a = random_pairs(1000, 7);
        let b = random_pairs(1000, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(k, _)| k <= MAX_KEY));
        assert_ne!(a, random_pairs(1000, 8));
    }

    #[test]
    fn unique_keys_are_distinct() {
        let keys = unique_random_keys(10_000, 3);
        let set: std::collections::HashSet<_> = keys.iter().copied().collect();
        assert_eq!(set.len(), keys.len());
    }

    #[test]
    fn unique_pairs_have_distinct_keys() {
        let pairs = unique_random_pairs(5000, 11);
        let set: std::collections::HashSet<_> = pairs.iter().map(|&(k, _)| k).collect();
        assert_eq!(set.len(), pairs.len());
    }

    #[test]
    fn disjoint_keys_do_not_collide() {
        let existing = unique_random_keys(2000, 1);
        let missing = unique_keys_disjoint_from(2000, &existing, 2);
        let existing_set: std::collections::HashSet<_> = existing.into_iter().collect();
        assert!(missing.iter().all(|k| !existing_set.contains(k)));
        let missing_set: std::collections::HashSet<_> = missing.iter().copied().collect();
        assert_eq!(missing_set.len(), missing.len());
    }

    #[test]
    fn zero_length_requests() {
        assert!(random_pairs(0, 0).is_empty());
        assert!(unique_random_keys(0, 0).is_empty());
    }
}
