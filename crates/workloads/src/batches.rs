//! Batch sequences for incremental-insertion experiments.
//!
//! Table II and Fig. 4 insert `n/b` consecutive batches of size `b` into an
//! initially empty structure; the mixed-batch generator adds a configurable
//! deletion fraction for the cleanup experiments of §V-D.

use gpu_lsm::{Op, UpdateBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::keygen::unique_random_pairs;

/// A sequence of update batches plus the ground-truth key set they produce.
#[derive(Debug, Clone)]
pub struct BatchSequence {
    /// The batches, in insertion order.
    pub batches: Vec<UpdateBatch>,
    /// Every key inserted (and never subsequently deleted) by the sequence.
    pub live_keys: Vec<u32>,
}

/// Generate `num_batches` pure-insertion batches of `batch_size` distinct
/// random keys each (distinct across the whole sequence).
pub fn pure_insert_batches(batch_size: usize, num_batches: usize, seed: u64) -> BatchSequence {
    let pairs = unique_random_pairs(batch_size * num_batches, seed);
    let batches = pairs
        .chunks(batch_size)
        .map(UpdateBatch::from_pairs)
        .collect();
    BatchSequence {
        live_keys: pairs.iter().map(|&(k, _)| k).collect(),
        batches,
    }
}

/// Generate mixed batches: each batch deletes `delete_fraction` of its slots
/// (targeting keys inserted by earlier batches) and fills the rest with new
/// distinct insertions.
pub fn mixed_batches(
    batch_size: usize,
    num_batches: usize,
    delete_fraction: f64,
    seed: u64,
) -> BatchSequence {
    assert!((0.0..=1.0).contains(&delete_fraction));
    let deletes_per_batch = (batch_size as f64 * delete_fraction).round() as usize;
    let inserts_per_batch = batch_size - deletes_per_batch;
    let all_pairs = unique_random_pairs(inserts_per_batch * num_batches, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);

    let mut batches = Vec::with_capacity(num_batches);
    let mut inserted_so_far: Vec<u32> = Vec::new();
    let mut deleted: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for b in 0..num_batches {
        let mut batch = UpdateBatch::with_capacity(batch_size);
        let new_pairs = &all_pairs[b * inserts_per_batch..(b + 1) * inserts_per_batch];
        for &(k, v) in new_pairs {
            batch.push(Op::Insert(k, v));
        }
        // Delete keys from earlier batches (if any exist yet).
        for _ in 0..deletes_per_batch {
            if inserted_so_far.is_empty() {
                // Nothing to delete yet: delete a key we are about to have
                // anyway (self-delete), keeping the batch full.
                let &(k, _) = &new_pairs[rng.gen_range(0..new_pairs.len().max(1))];
                batch.push(Op::Delete(k));
                deleted.insert(k);
            } else {
                let victim = inserted_so_far[rng.gen_range(0..inserted_so_far.len())];
                batch.push(Op::Delete(victim));
                deleted.insert(victim);
            }
        }
        inserted_so_far.extend(new_pairs.iter().map(|&(k, _)| k));
        batches.push(batch);
    }

    let live_keys = inserted_so_far
        .into_iter()
        .filter(|k| !deleted.contains(k))
        .collect();
    BatchSequence { batches, live_keys }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_insert_batches_have_right_shape() {
        let seq = pure_insert_batches(64, 10, 1);
        assert_eq!(seq.batches.len(), 10);
        assert!(seq.batches.iter().all(|b| b.len() == 64));
        assert_eq!(seq.live_keys.len(), 640);
    }

    #[test]
    fn pure_insert_batches_are_deterministic() {
        let a = pure_insert_batches(16, 4, 9);
        let b = pure_insert_batches(16, 4, 9);
        assert_eq!(a.batches, b.batches);
    }

    #[test]
    fn mixed_batches_respect_delete_fraction() {
        let seq = mixed_batches(100, 8, 0.3, 5);
        assert_eq!(seq.batches.len(), 8);
        for batch in &seq.batches {
            assert_eq!(batch.len(), 100);
            let deletes = batch
                .ops()
                .iter()
                .filter(|op| matches!(op, Op::Delete(_)))
                .count();
            assert_eq!(deletes, 30);
        }
    }

    #[test]
    fn mixed_batches_live_keys_exclude_deleted() {
        let seq = mixed_batches(50, 6, 0.2, 42);
        let deleted: std::collections::HashSet<u32> = seq
            .batches
            .iter()
            .flat_map(|b| b.ops())
            .filter_map(|op| match op {
                Op::Delete(k) => Some(*k),
                _ => None,
            })
            .collect();
        assert!(seq.live_keys.iter().all(|k| !deleted.contains(k)));
    }

    #[test]
    fn zero_delete_fraction_is_pure_insert() {
        let seq = mixed_batches(32, 3, 0.0, 7);
        assert!(seq
            .batches
            .iter()
            .all(|b| b.ops().iter().all(|op| matches!(op, Op::Insert(..)))));
    }
}
