//! Open-loop mixed update/query workload driver.
//!
//! The paper's experiments drive one structure from one host thread, one
//! phase at a time.  A serving system sees the opposite: many client
//! threads issuing update batches and query batches concurrently, with the
//! readers not waiting for the writers.  This module drives any
//! [`LsmBackend`] (the single-lock [`ConcurrentGpuLsm`] or the sharded
//! [`ShardedLsm`]) with exactly that traffic shape and reports sustained
//! throughput, so shard-scaling experiments and the CI gate can measure
//! service-level rates rather than single-phase kernel rates.
//!
//! Writers each apply a deterministic, seeded sequence of mixed
//! insert/delete batches as fast as the backend admits them.  Readers run
//! *open loop*: they issue lookup / count / range batches continuously
//! until every writer has drained, never synchronising with updates.  All
//! workload generation is seeded per thread, so two runs against the same
//! backend replay identical operation streams.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use gpu_lsm::{AdmittedLsm, ConcurrentGpuLsm, Key, RangeResult, ShardedLsm, UpdateBatch, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A thread-safe LSM service a mixed workload can be driven against.
///
/// Both the single-lock wrapper and the sharded service implement this, so
/// experiments can compare them under identical traffic.
pub trait LsmBackend: Clone + Send + Sync + 'static {
    /// Short label for reports.
    fn label(&self) -> String;
    /// Apply one mixed update batch (exclusive phase on the touched state).
    /// Pipelined backends may only *admit* the batch here; `flush` is the
    /// completion barrier.
    fn apply(&self, batch: &UpdateBatch) -> gpu_lsm::Result<()>;
    /// Bulk point lookups.
    fn lookup(&self, keys: &[Key]) -> Vec<Option<Value>>;
    /// Bulk count queries.
    fn count(&self, intervals: &[(Key, Key)]) -> Vec<u32>;
    /// Bulk range queries.
    fn range(&self, intervals: &[(Key, Key)]) -> RangeResult;
    /// Wait until every previously applied batch is durable in the
    /// structure (no-op for synchronous backends).  The driver calls this
    /// once the writers drain, so admitted throughput counts finished
    /// work, not queued work.
    fn flush(&self) {}
}

impl LsmBackend for ConcurrentGpuLsm {
    fn label(&self) -> String {
        "concurrent-lsm".to_string()
    }
    fn apply(&self, batch: &UpdateBatch) -> gpu_lsm::Result<()> {
        self.update(batch)
    }
    fn lookup(&self, keys: &[Key]) -> Vec<Option<Value>> {
        ConcurrentGpuLsm::lookup(self, keys)
    }
    fn count(&self, intervals: &[(Key, Key)]) -> Vec<u32> {
        ConcurrentGpuLsm::count(self, intervals)
    }
    fn range(&self, intervals: &[(Key, Key)]) -> RangeResult {
        ConcurrentGpuLsm::range(self, intervals)
    }
}

impl LsmBackend for ShardedLsm {
    fn label(&self) -> String {
        format!("sharded-lsm x{}", self.num_shards())
    }
    fn apply(&self, batch: &UpdateBatch) -> gpu_lsm::Result<()> {
        self.update(batch)
    }
    fn lookup(&self, keys: &[Key]) -> Vec<Option<Value>> {
        ShardedLsm::lookup(self, keys)
    }
    fn count(&self, intervals: &[(Key, Key)]) -> Vec<u32> {
        ShardedLsm::count(self, intervals)
    }
    fn range(&self, intervals: &[(Key, Key)]) -> RangeResult {
        ShardedLsm::range(self, intervals)
    }
}

impl LsmBackend for AdmittedLsm {
    fn label(&self) -> String {
        format!(
            "admitted-lsm x{}{}",
            self.service().num_shards(),
            if self.config().read_your_writes {
                " ryw"
            } else {
                ""
            }
        )
    }
    fn apply(&self, batch: &UpdateBatch) -> gpu_lsm::Result<()> {
        self.submit(batch)
    }
    fn lookup(&self, keys: &[Key]) -> Vec<Option<Value>> {
        AdmittedLsm::lookup(self, keys)
    }
    fn count(&self, intervals: &[(Key, Key)]) -> Vec<u32> {
        AdmittedLsm::count(self, intervals)
    }
    fn range(&self, intervals: &[(Key, Key)]) -> RangeResult {
        AdmittedLsm::range(self, intervals)
    }
    fn flush(&self) {
        AdmittedLsm::flush(self);
    }
}

/// Shape of a mixed open-loop run.
#[derive(Debug, Clone)]
pub struct MixedWorkloadConfig {
    /// Concurrent writer (update) threads; must be at least 1.
    pub writer_threads: usize,
    /// Concurrent reader (query) threads.
    pub reader_threads: usize,
    /// Update batches each writer applies.
    pub batches_per_writer: usize,
    /// Operations per update batch (the service's fixed `b`).
    pub batch_size: usize,
    /// Fraction of each batch that is deletions of previously usable keys.
    pub delete_fraction: f64,
    /// Point lookups per reader iteration.
    pub lookups_per_round: usize,
    /// Interval (count + range) queries per reader iteration.
    pub intervals_per_round: usize,
    /// Width of generated query intervals.
    pub interval_width: u32,
    /// Keys are drawn from `0..key_domain`.
    pub key_domain: u32,
    /// Master seed; every thread derives its own stream from it.
    pub seed: u64,
}

impl Default for MixedWorkloadConfig {
    fn default() -> Self {
        MixedWorkloadConfig {
            writer_threads: 2,
            reader_threads: 2,
            batches_per_writer: 16,
            batch_size: 256,
            delete_fraction: 0.2,
            lookups_per_round: 256,
            intervals_per_round: 16,
            interval_width: 1 << 12,
            key_domain: 1 << 20,
            seed: 0x5EED_CAFE,
        }
    }
}

/// What a mixed open-loop run did and how fast.
#[derive(Debug, Clone)]
pub struct MixedWorkloadReport {
    /// Backend label the run was driven against.
    pub backend: String,
    /// Update batches applied (writers × batches each).
    pub update_batches: usize,
    /// Total update operations applied.
    pub update_ops: usize,
    /// Point lookups answered.
    pub lookups: usize,
    /// Interval queries (counts + ranges) answered.
    pub interval_queries: usize,
    /// Total elements returned by range queries.
    pub range_elements: usize,
    /// Wall-clock seconds for the whole run.
    pub elapsed_seconds: f64,
    /// Update throughput in M operations/s.
    pub update_rate_m: f64,
    /// Query throughput (lookups + interval queries) in M queries/s.
    pub query_rate_m: f64,
}

/// Generate one writer batch: distinct keys, a `delete_fraction` of them
/// deletions, the rest insertions.  Distinct keys keep per-batch semantics
/// order-independent, so differential checks against a sequential model
/// stay exact.
pub fn generate_update_batch(
    rng: &mut StdRng,
    batch_size: usize,
    key_domain: u32,
    delete_fraction: f64,
) -> UpdateBatch {
    let mut batch = UpdateBatch::with_capacity(batch_size);
    let mut used = std::collections::HashSet::with_capacity(batch_size * 2);
    while used.len() < batch_size {
        let key = rng.gen_range(0..key_domain);
        if !used.insert(key) {
            continue;
        }
        if rng.gen_bool(delete_fraction) {
            batch.delete(key);
        } else {
            batch.insert(key, rng.gen::<u32>());
        }
    }
    batch
}

/// Drive `backend` with the configured concurrent mixed traffic and report
/// sustained service throughput.
pub fn run_mixed_workload<B: LsmBackend>(
    backend: &B,
    config: &MixedWorkloadConfig,
) -> MixedWorkloadReport {
    assert!(config.writer_threads >= 1, "need at least one writer");
    assert!(config.batch_size >= 1, "need a positive batch size");
    let writers_done = AtomicBool::new(false);
    let start = Instant::now();

    // (lookups, interval queries, range elements) per reader.
    let mut reader_tallies: Vec<(usize, usize, usize)> = Vec::new();
    std::thread::scope(|scope| {
        let mut writer_handles = Vec::new();
        for w in 0..config.writer_threads {
            let backend = backend.clone();
            let config = config.clone();
            writer_handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(config.seed ^ (0xA110 + w as u64));
                for _ in 0..config.batches_per_writer {
                    let batch = generate_update_batch(
                        &mut rng,
                        config.batch_size,
                        config.key_domain,
                        config.delete_fraction,
                    );
                    backend.apply(&batch).expect("valid generated batch");
                }
            }));
        }

        let mut reader_handles = Vec::new();
        for r in 0..config.reader_threads {
            let backend = backend.clone();
            let config = config.clone();
            let writers_done = &writers_done;
            reader_handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(config.seed ^ (0xBEAD + r as u64));
                let mut lookups = 0usize;
                let mut intervals = 0usize;
                let mut range_elements = 0usize;
                // Open loop: keep issuing query batches until the writers
                // have drained — checking for shutdown only *after* a full
                // round, so every reader observes the structure at least
                // once even when the writers drain before it is scheduled.
                loop {
                    let keys: Vec<Key> = (0..config.lookups_per_round)
                        .map(|_| rng.gen_range(0..config.key_domain))
                        .collect();
                    let answers = backend.lookup(&keys);
                    assert_eq!(answers.len(), keys.len());
                    lookups += keys.len();

                    let spans: Vec<(Key, Key)> = (0..config.intervals_per_round)
                        .map(|_| {
                            let lo = rng.gen_range(0..config.key_domain);
                            (lo, lo.saturating_add(config.interval_width))
                        })
                        .collect();
                    let counts = backend.count(&spans);
                    assert_eq!(counts.len(), spans.len());
                    let ranges = backend.range(&spans);
                    // Counts and ranges see different states under
                    // concurrent updates, but both answer every query.
                    assert_eq!(ranges.num_queries(), spans.len());
                    range_elements += ranges.total_len();
                    intervals += 2 * spans.len();
                    if writers_done.load(Ordering::Acquire) {
                        break;
                    }
                }
                (lookups, intervals, range_elements)
            }));
        }

        for h in writer_handles {
            h.join().expect("writer thread");
        }
        // Pipelined backends drain their admission queues here, so the
        // reported rate is for *applied* batches; synchronous backends
        // return immediately.
        backend.flush();
        writers_done.store(true, Ordering::Release);
        for h in reader_handles {
            reader_tallies.push(h.join().expect("reader thread"));
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    let update_batches = config.writer_threads * config.batches_per_writer;
    let update_ops = update_batches * config.batch_size;
    let lookups: usize = reader_tallies.iter().map(|t| t.0).sum();
    let interval_queries: usize = reader_tallies.iter().map(|t| t.1).sum();
    let range_elements: usize = reader_tallies.iter().map(|t| t.2).sum();
    let queries = lookups + interval_queries;
    MixedWorkloadReport {
        backend: backend.label(),
        update_batches,
        update_ops,
        lookups,
        interval_queries,
        range_elements,
        elapsed_seconds: elapsed,
        update_rate_m: update_ops as f64 / elapsed / 1.0e6,
        query_rate_m: queries as f64 / elapsed / 1.0e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use gpu_sim::{Device, DeviceConfig};

    fn small_config() -> MixedWorkloadConfig {
        MixedWorkloadConfig {
            writer_threads: 2,
            reader_threads: 2,
            batches_per_writer: 4,
            batch_size: 64,
            delete_fraction: 0.25,
            lookups_per_round: 64,
            intervals_per_round: 4,
            interval_width: 1 << 8,
            key_domain: 1 << 12,
            seed: 7,
        }
    }

    #[test]
    fn drives_the_concurrent_wrapper() {
        let device = Arc::new(Device::new(DeviceConfig::small()));
        let backend = ConcurrentGpuLsm::create(device, 64).unwrap();
        let report = run_mixed_workload(&backend, &small_config());
        assert_eq!(report.backend, "concurrent-lsm");
        assert_eq!(report.update_batches, 8);
        assert_eq!(report.update_ops, 8 * 64);
        assert!(report.lookups > 0, "readers issued at least one round");
        assert!(report.elapsed_seconds > 0.0);
        assert!(report.update_rate_m > 0.0);
        assert!(report.query_rate_m > 0.0);
    }

    #[test]
    fn drives_the_sharded_service_and_state_is_consistent() {
        let device = Arc::new(Device::new(DeviceConfig::small()));
        let backend = ShardedLsm::new(device, 64, 4).unwrap();
        let report = run_mixed_workload(&backend, &small_config());
        assert_eq!(report.backend, "sharded-lsm x4");
        assert_eq!(report.update_ops, 8 * 64);
        // After the run the structure satisfies its invariants and the
        // service-wide count is bounded by the key domain.
        backend.check_invariants().unwrap();
        let total = backend.count(&[(0, gpu_lsm::MAX_KEY)])[0];
        assert!(total as usize <= 1 << 12);
    }

    #[test]
    fn drives_the_admitted_service_and_drains_it() {
        let device = Arc::new(Device::new(DeviceConfig::small()));
        let backend = AdmittedLsm::new(ShardedLsm::new(device, 64, 4).unwrap());
        let report = run_mixed_workload(&backend, &small_config());
        assert_eq!(report.backend, "admitted-lsm x4");
        assert_eq!(report.update_ops, 8 * 64);
        // The driver's flush barrier ran: nothing is still queued, and the
        // applied state satisfies the invariants.
        assert_eq!(backend.admission_stats().queued_batches, 0);
        backend.check_invariants().unwrap();
        assert!(backend.count(&[(0, gpu_lsm::MAX_KEY)])[0] as usize <= 1 << 12);
        assert!(report.lookups > 0);
    }

    #[test]
    fn workload_generation_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let ba = generate_update_batch(&mut a, 32, 1000, 0.3);
        let bb = generate_update_batch(&mut b, 32, 1000, 0.3);
        assert_eq!(ba, bb);
        assert_eq!(ba.len(), 32);
    }
}
