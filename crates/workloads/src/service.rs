//! Mixed update/query workload driver with per-operation latency capture.
//!
//! The paper's experiments drive one structure from one host thread, one
//! phase at a time.  A serving system sees the opposite: many client
//! threads issuing update batches and query batches concurrently, with the
//! readers not waiting for the writers.  This module drives any
//! [`LsmBackend`] (the single-lock [`ConcurrentGpuLsm`], the sharded
//! [`ShardedLsm`] or the pipelined [`AdmittedLsm`]) with exactly that
//! traffic shape and reports sustained throughput **and per-operation
//! latency percentiles** (p50/p99/p999 for update, lookup, count and range
//! requests), so shard-scaling experiments and the CI gates can measure
//! service-level behaviour rather than single-phase kernel rates.
//!
//! Two client disciplines are supported:
//!
//! * **Open loop** (default): writers apply their update batches as fast
//!   as the backend admits them, and readers issue query rounds
//!   continuously until every writer has drained — load is injected
//!   regardless of how the service keeps up, which is what exposes
//!   saturation behaviour.
//! * **Closed loop** ([`MixedWorkloadConfig::closed_loop`]): every client
//!   sleeps a per-request *think time* between operations and each writer
//!   bounds its *outstanding* (admitted but not yet applied) batches with
//!   a periodic flush barrier — the discipline real clients follow, and
//!   the one that actually exercises admission backpressure instead of
//!   instantly filling the queues.
//!
//! Every client thread records latencies into its own
//! [`LatencyHistogram`]s (no shared state on the request path); the driver
//! merges them into the report after the run.  All workload generation is
//! seeded per thread, so two runs against the same backend replay
//! identical operation streams.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use gpu_lsm::{
    AdmittedLsm, ConcurrentGpuLsm, Key, LatencyHistogram, LatencySnapshot, RangeResult, ShardedLsm,
    UpdateBatch, Value, MAX_KEY,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::ZipfKeys;

/// A thread-safe LSM service a mixed workload can be driven against.
///
/// Both the single-lock wrapper and the sharded service implement this, so
/// experiments can compare them under identical traffic.
pub trait LsmBackend: Clone + Send + Sync + 'static {
    /// Short label for reports.
    fn label(&self) -> String;
    /// Apply one mixed update batch (exclusive phase on the touched state).
    /// Pipelined backends may only *admit* the batch here; `flush` is the
    /// completion barrier.
    fn apply(&self, batch: &UpdateBatch) -> gpu_lsm::Result<()>;
    /// Bulk point lookups.
    fn lookup(&self, keys: &[Key]) -> Vec<Option<Value>>;
    /// Bulk count queries.
    fn count(&self, intervals: &[(Key, Key)]) -> Vec<u32>;
    /// Bulk range queries.
    fn range(&self, intervals: &[(Key, Key)]) -> RangeResult;
    /// Wait until every previously applied batch is durable in the
    /// structure (no-op for synchronous backends).  The driver calls this
    /// once the writers drain, so admitted throughput counts finished
    /// work, not queued work.
    fn flush(&self) {}
}

impl LsmBackend for ConcurrentGpuLsm {
    fn label(&self) -> String {
        "concurrent-lsm".to_string()
    }
    fn apply(&self, batch: &UpdateBatch) -> gpu_lsm::Result<()> {
        self.update(batch)
    }
    fn lookup(&self, keys: &[Key]) -> Vec<Option<Value>> {
        ConcurrentGpuLsm::lookup(self, keys)
    }
    fn count(&self, intervals: &[(Key, Key)]) -> Vec<u32> {
        ConcurrentGpuLsm::count(self, intervals)
    }
    fn range(&self, intervals: &[(Key, Key)]) -> RangeResult {
        ConcurrentGpuLsm::range(self, intervals)
    }
}

impl LsmBackend for ShardedLsm {
    fn label(&self) -> String {
        match self.router().kind() {
            gpu_lsm::RouterKind::Learned => {
                format!("sharded-lsm x{} learned", self.num_shards())
            }
            gpu_lsm::RouterKind::Uniform => format!("sharded-lsm x{}", self.num_shards()),
        }
    }
    fn apply(&self, batch: &UpdateBatch) -> gpu_lsm::Result<()> {
        self.update(batch)
    }
    fn lookup(&self, keys: &[Key]) -> Vec<Option<Value>> {
        ShardedLsm::lookup(self, keys)
    }
    fn count(&self, intervals: &[(Key, Key)]) -> Vec<u32> {
        ShardedLsm::count(self, intervals)
    }
    fn range(&self, intervals: &[(Key, Key)]) -> RangeResult {
        ShardedLsm::range(self, intervals)
    }
}

impl LsmBackend for AdmittedLsm {
    fn label(&self) -> String {
        format!(
            "admitted-lsm x{}{}",
            self.service().num_shards(),
            if self.config().read_your_writes {
                " ryw"
            } else {
                ""
            }
        )
    }
    fn apply(&self, batch: &UpdateBatch) -> gpu_lsm::Result<()> {
        self.submit(batch)
    }
    fn lookup(&self, keys: &[Key]) -> Vec<Option<Value>> {
        AdmittedLsm::lookup(self, keys)
    }
    fn count(&self, intervals: &[(Key, Key)]) -> Vec<u32> {
        AdmittedLsm::count(self, intervals)
    }
    fn range(&self, intervals: &[(Key, Key)]) -> RangeResult {
        AdmittedLsm::range(self, intervals)
    }
    fn flush(&self) {
        AdmittedLsm::flush(self).expect("admission pipeline failed during flush");
    }
}

/// The `LSM_CLIENT_THINK_US` environment knob: default per-client think
/// time in microseconds for closed-loop runs (default 0).
fn env_think_us() -> u64 {
    static US: OnceLock<u64> = OnceLock::new();
    *US.get_or_init(|| {
        std::env::var("LSM_CLIENT_THINK_US")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0)
    })
}

/// The `LSM_CLIENT_OUTSTANDING` environment knob: default bound on each
/// closed-loop writer's admitted-but-unapplied batches (default 4;
/// 0 = unbounded).
fn env_outstanding() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("LSM_CLIENT_OUTSTANDING")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(4)
    })
}

/// Shape of a mixed concurrent run.
#[derive(Debug, Clone)]
pub struct MixedWorkloadConfig {
    /// Concurrent writer (update) threads; must be at least 1.
    pub writer_threads: usize,
    /// Concurrent reader (query) threads.
    pub reader_threads: usize,
    /// Update batches each writer applies.
    pub batches_per_writer: usize,
    /// Operations per update batch (the service's fixed `b`).
    pub batch_size: usize,
    /// Fraction of each batch that is deletions of previously usable keys.
    pub delete_fraction: f64,
    /// Point lookups per reader iteration.
    pub lookups_per_round: usize,
    /// Interval queries per reader iteration (each span is issued once as
    /// a count and once as a range query).
    pub intervals_per_round: usize,
    /// Width of generated query intervals (upper ends are clamped to the
    /// 31-bit key domain at generation).
    pub interval_width: u32,
    /// Keys are drawn from `0..key_domain`.
    pub key_domain: u32,
    /// Zipf skew exponent for generated keys (`0.0` = uniform).  When
    /// positive, writer batch keys and reader lookup keys are drawn from a
    /// [`ZipfKeys`] sampler over the key domain (rank 0 = key 0 is the
    /// hottest), concentrating traffic on low keys — the workload shape the
    /// learned shard router and the rebalancer are built for.
    pub zipf_theta: f64,
    /// Master seed; every thread derives its own stream from it.
    pub seed: u64,
    /// Closed-loop client discipline: think time between requests and a
    /// bounded outstanding-batch window per writer (see the module docs).
    /// Open loop when `false` (the two knobs below are then ignored).
    pub closed_loop: bool,
    /// Closed loop: microseconds each client sleeps between requests
    /// (defaults to the `LSM_CLIENT_THINK_US` environment knob).
    pub think_time_us: u64,
    /// Closed loop: a writer issues a flush barrier whenever this many of
    /// its batches may still be unapplied, bounding its outstanding work
    /// (0 = unbounded; defaults to the `LSM_CLIENT_OUTSTANDING` knob).
    pub max_outstanding: usize,
}

impl Default for MixedWorkloadConfig {
    fn default() -> Self {
        MixedWorkloadConfig {
            writer_threads: 2,
            reader_threads: 2,
            batches_per_writer: 16,
            batch_size: 256,
            delete_fraction: 0.2,
            lookups_per_round: 256,
            intervals_per_round: 16,
            interval_width: 1 << 12,
            key_domain: 1 << 20,
            zipf_theta: 0.0,
            seed: 0x5EED_CAFE,
            closed_loop: false,
            think_time_us: env_think_us(),
            max_outstanding: env_outstanding(),
        }
    }
}

/// Per-operation-type latency histograms of one run (nanosecond samples).
///
/// One *sample* is one service request as a client experiences it: an
/// update-batch submission (including any admission backpressure block),
/// or one bulk lookup / count / range call.  Merging is bucket-wise, so
/// per-thread recordings fold together in any order.
#[derive(Debug, Clone, Default)]
pub struct MixedLatencies {
    /// Update-batch submission latency per batch.
    pub update: LatencyHistogram,
    /// Bulk point-lookup call latency per round.
    pub lookup: LatencyHistogram,
    /// Bulk count call latency per round.
    pub count: LatencyHistogram,
    /// Bulk range call latency per round.
    pub range: LatencyHistogram,
}

impl MixedLatencies {
    /// Fold another thread's recordings into this one.
    pub fn merge(&mut self, other: &MixedLatencies) {
        self.update.merge(&other.update);
        self.lookup.merge(&other.lookup);
        self.count.merge(&other.count);
        self.range.merge(&other.range);
    }

    /// Microsecond percentile summaries, one per op type, in reporting
    /// order: update, lookup, count, range.
    pub fn snapshots_us(&self) -> [(&'static str, LatencySnapshot); 4] {
        [
            ("update", self.update.snapshot_us()),
            ("lookup", self.lookup.snapshot_us()),
            ("count", self.count.snapshot_us()),
            ("range", self.range.snapshot_us()),
        ]
    }
}

/// What a mixed run did and how fast.
#[derive(Debug, Clone)]
pub struct MixedWorkloadReport {
    /// Backend label the run was driven against.
    pub backend: String,
    /// Update batches applied (writers × batches each).
    pub update_batches: usize,
    /// Total update operations applied.
    pub update_ops: usize,
    /// Point lookups answered.
    pub lookups: usize,
    /// Count queries answered.
    pub count_queries: usize,
    /// Range queries answered.
    pub range_queries: usize,
    /// Total elements returned by range queries.
    pub range_elements: usize,
    /// Wall-clock seconds until the writers drained **and** the backend's
    /// flush barrier returned — the update-throughput denominator.  The
    /// readers' final post-flush round happens after this point, so it
    /// cannot deflate the update rate.
    pub update_elapsed_seconds: f64,
    /// Wall-clock seconds for the whole run (readers included).
    pub elapsed_seconds: f64,
    /// Update throughput in M operations/s (over `update_elapsed_seconds`).
    pub update_rate_m: f64,
    /// Query throughput (lookups + counts + ranges) in M queries/s (over
    /// `elapsed_seconds`, the span queries were actually issued in).
    pub query_rate_m: f64,
    /// Per-operation-type latency histograms, merged over every client.
    pub latency: MixedLatencies,
}

impl MixedWorkloadReport {
    /// Count plus range queries (the old opaque combined counter).
    pub fn interval_queries(&self) -> usize {
        self.count_queries + self.range_queries
    }
}

/// Generate one writer batch: distinct keys, a `delete_fraction` of them
/// deletions, the rest insertions.  Distinct keys keep per-batch semantics
/// order-independent, so differential checks against a sequential model
/// stay exact.
pub fn generate_update_batch(
    rng: &mut StdRng,
    batch_size: usize,
    key_domain: u32,
    delete_fraction: f64,
) -> UpdateBatch {
    let mut batch = UpdateBatch::with_capacity(batch_size);
    let mut used = std::collections::HashSet::with_capacity(batch_size * 2);
    while used.len() < batch_size {
        let key = rng.gen_range(0..key_domain);
        if !used.insert(key) {
            continue;
        }
        if rng.gen_bool(delete_fraction) {
            batch.delete(key);
        } else {
            batch.insert(key, rng.gen::<u32>());
        }
    }
    batch
}

/// Generate one writer batch whose keys come from a [`ZipfKeys`] sampler
/// (skewed popularity) while keeping the distinct-keys-per-batch contract
/// of [`generate_update_batch`].  Because a skewed sampler re-draws hot
/// keys constantly, the rejection loop falls back to uniform keys over the
/// sampler's universe once it has discarded `64 × batch_size` duplicates,
/// so degenerate configurations (tiny hot set, large batch) still
/// terminate.
pub fn generate_zipf_update_batch(
    keys: &mut ZipfKeys,
    rng: &mut StdRng,
    batch_size: usize,
    delete_fraction: f64,
) -> UpdateBatch {
    let mut batch = UpdateBatch::with_capacity(batch_size);
    let mut used = std::collections::HashSet::with_capacity(batch_size * 2);
    let mut rejects = 0usize;
    while used.len() < batch_size {
        let key = if rejects <= 64 * batch_size {
            keys.sample()
        } else {
            rng.gen_range(0..keys.universe())
        };
        if !used.insert(key) {
            rejects += 1;
            continue;
        }
        if rng.gen_bool(delete_fraction) {
            batch.delete(key);
        } else {
            batch.insert(key, rng.gen::<u32>());
        }
    }
    batch
}

/// Generate one reader round's interval spans.  Upper ends are clamped to
/// [`MAX_KEY`] **at generation**: the key domain is 31-bit, so
/// `lo + interval_width` can otherwise exceed it and silently rely on
/// downstream clamping (which a differential harness comparing count
/// against range must not assume).
pub fn generate_query_spans(
    rng: &mut StdRng,
    num_spans: usize,
    key_domain: u32,
    interval_width: u32,
) -> Vec<(Key, Key)> {
    (0..num_spans)
        .map(|_| {
            let lo = rng.gen_range(0..key_domain).min(MAX_KEY);
            (lo, lo.saturating_add(interval_width).min(MAX_KEY))
        })
        .collect()
}

/// Sleep the configured closed-loop think time (no-op in open loop).
fn think(config: &MixedWorkloadConfig) {
    if config.closed_loop && config.think_time_us > 0 {
        std::thread::sleep(Duration::from_micros(config.think_time_us));
    }
}

/// Drive `backend` with the configured concurrent mixed traffic and report
/// sustained service throughput plus per-operation latency percentiles.
pub fn run_mixed_workload<B: LsmBackend>(
    backend: &B,
    config: &MixedWorkloadConfig,
) -> MixedWorkloadReport {
    assert!(config.writer_threads >= 1, "need at least one writer");
    assert!(config.batch_size >= 1, "need a positive batch size");
    let writers_done = AtomicBool::new(false);
    let start = Instant::now();

    // (lookups, counts, ranges, range elements, latencies) per reader.
    type ReaderTally = (usize, usize, usize, usize, MixedLatencies);
    let mut latency = MixedLatencies::default();
    let mut reader_tallies: Vec<ReaderTally> = Vec::new();
    let mut update_elapsed = Duration::ZERO;
    std::thread::scope(|scope| {
        let mut writer_handles = Vec::new();
        for w in 0..config.writer_threads {
            let backend = backend.clone();
            let config = config.clone();
            writer_handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(config.seed ^ (0xA110 + w as u64));
                let mut zipf = (config.zipf_theta > 0.0).then(|| {
                    ZipfKeys::new(
                        config.key_domain,
                        config.zipf_theta,
                        config.seed ^ (0x21F_0000 + w as u64),
                    )
                });
                let mut recorded = LatencyHistogram::new();
                for n in 1..=config.batches_per_writer {
                    let batch = match zipf.as_mut() {
                        Some(z) => generate_zipf_update_batch(
                            z,
                            &mut rng,
                            config.batch_size,
                            config.delete_fraction,
                        ),
                        None => generate_update_batch(
                            &mut rng,
                            config.batch_size,
                            config.key_domain,
                            config.delete_fraction,
                        ),
                    };
                    let issued = Instant::now();
                    backend.apply(&batch).expect("valid generated batch");
                    recorded.record_duration(issued.elapsed());
                    // Closed loop: bound this writer's outstanding batches.
                    // The barrier waits for everything admitted before it,
                    // so after it at most 0 of this writer's batches are
                    // unapplied — a window of `max_outstanding`.
                    if config.closed_loop
                        && config.max_outstanding > 0
                        && n % config.max_outstanding == 0
                    {
                        backend.flush();
                    }
                    think(&config);
                }
                recorded
            }));
        }

        let mut reader_handles = Vec::new();
        for r in 0..config.reader_threads {
            let backend = backend.clone();
            let config = config.clone();
            let writers_done = &writers_done;
            reader_handles.push(scope.spawn(move || -> ReaderTally {
                let mut rng = StdRng::seed_from_u64(config.seed ^ (0xBEAD + r as u64));
                let mut zipf = (config.zipf_theta > 0.0).then(|| {
                    ZipfKeys::new(
                        config.key_domain,
                        config.zipf_theta,
                        config.seed ^ (0x21F_8000 + r as u64),
                    )
                });
                let mut lookups = 0usize;
                let mut counts = 0usize;
                let mut ranges = 0usize;
                let mut range_elements = 0usize;
                let mut recorded = MixedLatencies::default();
                // Keep issuing query rounds until the writers have drained
                // — checking for shutdown only *after* a full round, so
                // every reader observes the structure at least once even
                // when the writers drain before it is scheduled.
                loop {
                    let keys: Vec<Key> = match zipf.as_mut() {
                        Some(z) => z.sample_batch(config.lookups_per_round),
                        None => (0..config.lookups_per_round)
                            .map(|_| rng.gen_range(0..config.key_domain))
                            .collect(),
                    };
                    let issued = Instant::now();
                    let answers = backend.lookup(&keys);
                    recorded.lookup.record_duration(issued.elapsed());
                    assert_eq!(answers.len(), keys.len());
                    lookups += keys.len();
                    think(&config);

                    let spans = generate_query_spans(
                        &mut rng,
                        config.intervals_per_round,
                        config.key_domain,
                        config.interval_width,
                    );
                    let issued = Instant::now();
                    let count_answers = backend.count(&spans);
                    recorded.count.record_duration(issued.elapsed());
                    assert_eq!(count_answers.len(), spans.len());
                    counts += spans.len();
                    think(&config);

                    let issued = Instant::now();
                    let range_answers = backend.range(&spans);
                    recorded.range.record_duration(issued.elapsed());
                    // Counts and ranges see different states under
                    // concurrent updates, but both answer every query.
                    assert_eq!(range_answers.num_queries(), spans.len());
                    range_elements += range_answers.total_len();
                    ranges += spans.len();
                    think(&config);

                    if writers_done.load(Ordering::Acquire) {
                        break;
                    }
                }
                (lookups, counts, ranges, range_elements, recorded)
            }));
        }

        for h in writer_handles {
            latency.update.merge(&h.join().expect("writer thread"));
        }
        // Pipelined backends drain their admission queues here, so the
        // reported rate is for *applied* batches; synchronous backends
        // return immediately.
        backend.flush();
        // Snapshot the update denominator *now*: every update op is
        // durable, and the readers' final post-flush round (below) must
        // not count against update throughput.
        update_elapsed = start.elapsed();
        writers_done.store(true, Ordering::Release);
        for h in reader_handles {
            reader_tallies.push(h.join().expect("reader thread"));
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let update_elapsed = update_elapsed.as_secs_f64();

    let update_batches = config.writer_threads * config.batches_per_writer;
    let update_ops = update_batches * config.batch_size;
    let lookups: usize = reader_tallies.iter().map(|t| t.0).sum();
    let count_queries: usize = reader_tallies.iter().map(|t| t.1).sum();
    let range_queries: usize = reader_tallies.iter().map(|t| t.2).sum();
    let range_elements: usize = reader_tallies.iter().map(|t| t.3).sum();
    for (_, _, _, _, recorded) in &reader_tallies {
        latency.merge(recorded);
    }
    let queries = lookups + count_queries + range_queries;
    MixedWorkloadReport {
        backend: backend.label(),
        update_batches,
        update_ops,
        lookups,
        count_queries,
        range_queries,
        range_elements,
        update_elapsed_seconds: update_elapsed,
        elapsed_seconds: elapsed,
        update_rate_m: update_ops as f64 / update_elapsed / 1.0e6,
        query_rate_m: queries as f64 / elapsed / 1.0e6,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use gpu_sim::{Device, DeviceConfig};

    fn small_config() -> MixedWorkloadConfig {
        MixedWorkloadConfig {
            writer_threads: 2,
            reader_threads: 2,
            batches_per_writer: 4,
            batch_size: 64,
            delete_fraction: 0.25,
            lookups_per_round: 64,
            intervals_per_round: 4,
            interval_width: 1 << 8,
            key_domain: 1 << 12,
            zipf_theta: 0.0,
            seed: 7,
            closed_loop: false,
            think_time_us: 0,
            max_outstanding: 0,
        }
    }

    #[test]
    fn drives_the_concurrent_wrapper() {
        let device = Arc::new(Device::new(DeviceConfig::small()));
        let backend = ConcurrentGpuLsm::create(device, 64).unwrap();
        let report = run_mixed_workload(&backend, &small_config());
        assert_eq!(report.backend, "concurrent-lsm");
        assert_eq!(report.update_batches, 8);
        assert_eq!(report.update_ops, 8 * 64);
        assert!(report.lookups > 0, "readers issued at least one round");
        assert!(report.elapsed_seconds > 0.0);
        assert!(report.update_elapsed_seconds > 0.0);
        assert!(report.update_elapsed_seconds <= report.elapsed_seconds);
        assert!(report.update_rate_m > 0.0);
        assert!(report.query_rate_m > 0.0);
        // Every op type recorded as many samples as it answered requests.
        assert_eq!(report.latency.update.count(), 8);
        assert_eq!(report.latency.lookup.count() as usize * 64, report.lookups);
        assert_eq!(
            report.latency.count.count() as usize * 4,
            report.count_queries
        );
        assert_eq!(
            report.latency.range.count() as usize * 4,
            report.range_queries
        );
    }

    #[test]
    fn drives_the_sharded_service_and_state_is_consistent() {
        let device = Arc::new(Device::new(DeviceConfig::small()));
        let backend = ShardedLsm::new(device, 64, 4).unwrap();
        let report = run_mixed_workload(&backend, &small_config());
        assert_eq!(report.backend, "sharded-lsm x4");
        assert_eq!(report.update_ops, 8 * 64);
        // Counts and ranges are reported separately and issued pairwise.
        assert_eq!(report.count_queries, report.range_queries);
        assert_eq!(report.interval_queries(), 2 * report.count_queries);
        // After the run the structure satisfies its invariants and the
        // service-wide count is bounded by the key domain.
        backend.check_invariants().unwrap();
        let total = backend.count(&[(0, gpu_lsm::MAX_KEY)])[0];
        assert!(total as usize <= 1 << 12);
    }

    #[test]
    fn drives_the_admitted_service_and_drains_it() {
        let device = Arc::new(Device::new(DeviceConfig::small()));
        let backend = AdmittedLsm::new(ShardedLsm::new(device, 64, 4).unwrap());
        let report = run_mixed_workload(&backend, &small_config());
        assert_eq!(report.backend, "admitted-lsm x4");
        assert_eq!(report.update_ops, 8 * 64);
        // The driver's flush barrier ran: nothing is still queued, and the
        // applied state satisfies the invariants.
        assert_eq!(backend.admission_stats().queued_batches, 0);
        backend.check_invariants().unwrap();
        assert!(backend.count(&[(0, gpu_lsm::MAX_KEY)])[0] as usize <= 1 << 12);
        assert!(report.lookups > 0);
        // The admission layer attributed queue-wait and apply time to
        // every batch it saw.
        let stats = backend.latency_stats();
        let admission = backend.admission_stats();
        assert_eq!(stats.queue_wait.count, admission.enqueued_sub_batches);
        assert_eq!(stats.apply.count, admission.applied_batches);
        assert!(stats.apply.count > 0);
        // The folded service stats carry the same snapshots.
        let sharded = backend.stats();
        assert_eq!(sharded.admission_queue_wait, stats.queue_wait);
        assert_eq!(sharded.admission_apply, stats.apply);
    }

    /// A backend wrapper whose query surface is artificially slow — the
    /// regression shape for the update-rate accounting fix: the readers'
    /// final post-flush round must not land in the update denominator.
    #[derive(Clone)]
    struct SlowReads {
        inner: ConcurrentGpuLsm,
        delay: Duration,
    }

    impl LsmBackend for SlowReads {
        fn label(&self) -> String {
            "slow-reads".to_string()
        }
        fn apply(&self, batch: &UpdateBatch) -> gpu_lsm::Result<()> {
            self.inner.update(batch)
        }
        fn lookup(&self, keys: &[Key]) -> Vec<Option<Value>> {
            std::thread::sleep(self.delay);
            self.inner.lookup(keys)
        }
        fn count(&self, intervals: &[(Key, Key)]) -> Vec<u32> {
            std::thread::sleep(self.delay);
            self.inner.count(intervals)
        }
        fn range(&self, intervals: &[(Key, Key)]) -> RangeResult {
            std::thread::sleep(self.delay);
            self.inner.range(intervals)
        }
    }

    #[test]
    fn slow_readers_do_not_deflate_update_rate() {
        let device = Arc::new(Device::new(DeviceConfig::small()));
        let backend = SlowReads {
            inner: ConcurrentGpuLsm::create(device, 64).unwrap(),
            delay: Duration::from_millis(25),
        };
        let mut config = small_config();
        config.writer_threads = 1;
        config.reader_threads = 1;
        let report = run_mixed_workload(&backend, &config);
        // The reader's final round alone costs >= 3 * 25 ms after the
        // update denominator was snapshotted.
        assert!(
            report.elapsed_seconds >= report.update_elapsed_seconds + 0.05,
            "final reader round must fall outside the update window \
             (update {}s, total {}s)",
            report.update_elapsed_seconds,
            report.elapsed_seconds,
        );
        // The reported rate is computed over the update window, not the
        // whole run (the pre-fix behaviour).
        let expected = report.update_ops as f64 / report.update_elapsed_seconds / 1.0e6;
        assert!((report.update_rate_m - expected).abs() < 1e-9);
        let deflated = report.update_ops as f64 / report.elapsed_seconds / 1.0e6;
        assert!(report.update_rate_m > deflated);
    }

    #[test]
    fn generated_spans_are_clamped_to_the_key_domain() {
        let mut rng = StdRng::seed_from_u64(99);
        // A domain reaching the 31-bit edge plus the widest possible
        // interval: every generated span must stay inside [0, MAX_KEY].
        let spans = generate_query_spans(&mut rng, 512, MAX_KEY, u32::MAX);
        for &(lo, hi) in &spans {
            assert!(lo <= hi);
            assert!(hi <= MAX_KEY);
        }
        // Wide spans over a near-edge domain actually touch the edge.
        assert!(spans.iter().any(|&(_, hi)| hi == MAX_KEY));
    }

    #[test]
    fn quiescent_counts_match_ranges_on_domain_edge_spans() {
        let device = Arc::new(Device::new(DeviceConfig::small()));
        let backend = ShardedLsm::new(device, 64, 2).unwrap();
        // Populate keys hugging the top of the 31-bit domain, then go
        // quiescent: with no concurrent writers, count and range answer
        // over the same state, so count(span) == range(span) length per
        // query — including spans clamped at MAX_KEY.
        let pairs: Vec<(Key, Value)> = (0..64u32).map(|i| (MAX_KEY - 2 * i, i)).collect();
        backend.insert(&pairs).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut spans = generate_query_spans(&mut rng, 64, MAX_KEY, 1 << 10);
        spans.push((MAX_KEY - 200, MAX_KEY));
        spans.push((MAX_KEY, MAX_KEY));
        let counts = backend.count(&spans);
        let ranges = backend.range(&spans);
        assert_eq!(ranges.num_queries(), spans.len());
        for (i, &c) in counts.iter().enumerate() {
            assert_eq!(c as usize, ranges.len(i), "span {:?}", spans[i]);
        }
        // The edge-hugging keys are actually found.
        assert!(counts.last().copied().unwrap() >= 1);
    }

    #[test]
    fn closed_loop_exercises_admission_and_reports_percentiles() {
        let device = Arc::new(Device::new(DeviceConfig::small()));
        let backend = AdmittedLsm::new(ShardedLsm::new(device, 64, 2).unwrap());
        let mut config = small_config();
        config.closed_loop = true;
        config.think_time_us = 200;
        config.max_outstanding = 2;
        config.batches_per_writer = 6;
        let report = run_mixed_workload(&backend, &config);
        assert_eq!(report.update_ops, 2 * 6 * 64);
        // Percentiles are ordered and populated for every op type.
        for (op, snap) in report.latency.snapshots_us() {
            assert!(snap.count > 0, "{op} recorded no samples");
            assert!(snap.p50_us <= snap.p99_us, "{op}");
            assert!(snap.p99_us <= snap.p999_us, "{op}");
            assert!(snap.p999_us <= snap.max_us.max(snap.p999_us), "{op}");
        }
        // The writers' periodic barriers showed up as flushes beyond the
        // driver's single final one.
        assert!(backend.admission_stats().flushes > 1);
        backend.check_invariants().unwrap();
    }

    #[test]
    fn zipf_batches_are_distinct_keyed_and_skewed() {
        let mut zipf = ZipfKeys::new(1 << 16, 0.99, 5);
        let mut rng = StdRng::seed_from_u64(5);
        let mut hot = 0usize;
        for _ in 0..8 {
            let batch = generate_zipf_update_batch(&mut zipf, &mut rng, 128, 0.2);
            assert_eq!(batch.len(), 128);
            let keys: std::collections::HashSet<Key> =
                batch.ops().iter().map(|op| op.key()).collect();
            assert_eq!(keys.len(), 128, "keys must stay distinct per batch");
            hot += keys.iter().filter(|&&k| k < 1 << 10).count();
        }
        // Under theta ≈ 1 the hottest 1/64th of the domain draws far more
        // than its uniform share (~16 of 1024 keys) — expect ~half.
        assert!(hot > 8 * 32, "zipf batches should be hot-key heavy: {hot}");
    }

    #[test]
    fn zipf_workload_drives_the_sharded_service() {
        let device = Arc::new(Device::new(DeviceConfig::small()));
        let backend = ShardedLsm::new(device, 64, 4).unwrap();
        let mut config = small_config();
        config.zipf_theta = 0.99;
        let report = run_mixed_workload(&backend, &config);
        assert_eq!(report.update_ops, 8 * 64);
        assert!(report.lookups > 0);
        backend.check_invariants().unwrap();
    }

    #[test]
    fn workload_generation_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let ba = generate_update_batch(&mut a, 32, 1000, 0.3);
        let bb = generate_update_batch(&mut b, 32, 1000, 0.3);
        assert_eq!(ba, bb);
        assert_eq!(ba.len(), 32);
        let sa = generate_query_spans(&mut a, 8, 1000, 50);
        let sb = generate_query_spans(&mut b, 8, 1000, 50);
        assert_eq!(sa, sb);
    }
}
