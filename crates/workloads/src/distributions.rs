//! Non-uniform and adversarial key distributions.
//!
//! The paper evaluates on uniform random keys, but a data structure release
//! needs stress workloads too: skewed (Zipf-like) key popularity where a few
//! hot keys are re-inserted constantly (maximum staleness pressure),
//! pre-sorted runs (the best case for merges, the worst case for naive
//! pivot-based approaches), and duplicate-heavy batches that exercise the
//! semantics rules 4–6.

use gpu_lsm::MAX_KEY;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Zipf-like sampler over `universe` distinct keys with exponent `theta`
/// (`theta = 0` is uniform; `theta ≈ 1` is strongly skewed).
///
/// Uses the standard inverse-CDF approximation with a precomputed harmonic
/// normaliser, which is accurate enough for workload generation.
#[derive(Debug, Clone)]
pub struct ZipfKeys {
    universe: u32,
    theta: f64,
    /// Cumulative (unnormalised) probability mass per rank, for binary
    /// search at sample time.  Truncated to the hottest 100 000 ranks;
    /// draws past the truncation fall back to a uniform key.
    cdf: Vec<f64>,
    rng: StdRng,
}

impl ZipfKeys {
    /// Create a sampler over keys `0..universe` with skew `theta`.
    pub fn new(universe: u32, theta: f64, seed: u64) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        assert!((0.0..2.0).contains(&theta), "theta must be in [0, 2)");
        let mut acc = 0.0;
        let cdf = (1..=universe.min(100_000))
            .map(|i| {
                acc += 1.0 / (i as f64).powf(theta);
                acc
            })
            .collect();
        ZipfKeys {
            universe,
            theta,
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The key universe: samples are drawn from `0..universe()`.
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// Draw one key; rank 0 (the hottest key) maps to key 0.
    pub fn sample(&mut self) -> u32 {
        if self.theta == 0.0 {
            return self.rng.gen_range(0..self.universe);
        }
        // Inverse CDF by binary search over the precomputed harmonic sums.
        let zeta = *self.cdf.last().expect("non-empty universe");
        let u: f64 = self.rng.gen_range(0.0..1.0) * zeta;
        let rank = self.cdf.partition_point(|&acc| acc < u);
        if rank < self.cdf.len() {
            rank as u32
        } else {
            self.rng.gen_range(0..self.universe)
        }
    }

    /// Draw a batch of `n` keys.
    pub fn sample_batch(&mut self, n: usize) -> Vec<u32> {
        (0..n).map(|_| self.sample()).collect()
    }
}

/// Pre-sorted ascending key–value pairs starting at `start` — the best case
/// for merge-based insertion and a stress case for any balance-sensitive
/// structure.
pub fn sorted_run(start: u32, n: usize) -> Vec<(u32, u32)> {
    (0..n as u32)
        .map(|i| ((start + i).min(MAX_KEY), i))
        .collect()
}

/// Reverse-sorted pairs ending at `end`.
pub fn reverse_sorted_run(end: u32, n: usize) -> Vec<(u32, u32)> {
    (0..n as u32).map(|i| (end.saturating_sub(i), i)).collect()
}

/// A batch in which every element has the *same* key — the degenerate case
/// of semantics rule 4 (only one of the duplicates may be visible).
pub fn all_duplicates(key: u32, n: usize) -> Vec<(u32, u32)> {
    (0..n as u32).map(|i| (key, i)).collect()
}

/// A "hot set" update stream: `fraction_hot` of each batch re-inserts keys
/// drawn from a small hot set (causing continual replacement and staleness),
/// the rest are fresh cold keys.
pub fn hot_set_batches(
    batch_size: usize,
    num_batches: usize,
    hot_set_size: u32,
    fraction_hot: f64,
    seed: u64,
) -> Vec<Vec<(u32, u32)>> {
    assert!((0.0..=1.0).contains(&fraction_hot));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_cold = hot_set_size;
    (0..num_batches)
        .map(|b| {
            (0..batch_size)
                .map(|i| {
                    if rng.gen_bool(fraction_hot) {
                        (rng.gen_range(0..hot_set_size), (b * batch_size + i) as u32)
                    } else {
                        next_cold += 1;
                        (next_cold.min(MAX_KEY), (b * batch_size + i) as u32)
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut z = ZipfKeys::new(10_000, 0.99, 1);
        let samples = z.sample_batch(20_000);
        let hot = samples.iter().filter(|&&k| k < 100).count();
        let cold = samples.iter().filter(|&&k| k >= 5000).count();
        assert!(
            hot > cold * 3,
            "skewed sampler should prefer hot keys: {hot} hot vs {cold} cold"
        );
        assert!(samples.iter().all(|&k| k < 10_000));
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let mut z = ZipfKeys::new(1000, 0.0, 2);
        let samples = z.sample_batch(50_000);
        let low_half = samples.iter().filter(|&&k| k < 500).count();
        assert!((low_half as f64 / 50_000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn sorted_runs_are_sorted() {
        let run = sorted_run(100, 50);
        assert!(run.windows(2).all(|w| w[0].0 <= w[1].0));
        let rev = reverse_sorted_run(100, 50);
        assert!(rev.windows(2).all(|w| w[0].0 >= w[1].0));
        assert_eq!(rev[0].0, 100);
    }

    #[test]
    fn all_duplicates_share_one_key() {
        let dup = all_duplicates(7, 16);
        assert_eq!(dup.len(), 16);
        assert!(dup.iter().all(|&(k, _)| k == 7));
    }

    #[test]
    fn hot_set_batches_have_requested_shape() {
        let batches = hot_set_batches(100, 5, 16, 0.5, 3);
        assert_eq!(batches.len(), 5);
        for batch in &batches {
            assert_eq!(batch.len(), 100);
            let hot = batch.iter().filter(|&&(k, _)| k < 16).count();
            assert!(hot > 20 && hot < 80, "hot fraction out of range: {hot}");
        }
    }

    #[test]
    #[should_panic(expected = "universe")]
    fn empty_universe_panics() {
        let _ = ZipfKeys::new(0, 0.5, 1);
    }
}
