//! Parameter-sweep descriptors shared by the experiment harness.
//!
//! The paper sweeps batch sizes from 2^15 to 2^27 (Table II) and 2^16 to
//! 2^24 (Table III); running those sizes on a CPU-hosted simulation is
//! possible but slow, so every experiment accepts a *scale* that shifts the
//! whole sweep down while preserving the ratios between `b` and `n` — which
//! is what the shapes in the paper's tables depend on.

use serde::{Deserialize, Serialize};

/// Configuration of one experiment sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Total number of elements `n` (paper: 2^27 for Table II, 2^24 for
    /// Tables III/IV).
    pub total_elements: usize,
    /// Batch sizes `b` to sweep.
    pub batch_sizes: Vec<usize>,
    /// Seed for workload generation.
    pub seed: u64,
}

impl SweepConfig {
    /// Number of batches (`n / b`) for a given batch size.
    pub fn num_batches(&self, batch_size: usize) -> usize {
        self.total_elements / batch_size
    }
}

/// The paper's Table II batch sizes: 2^15 … 2^27.
pub fn paper_batch_sizes() -> Vec<usize> {
    (15..=27).map(|p| 1usize << p).collect()
}

/// A scaled sweep: batch sizes 2^(15−shift) … 2^(27−shift), clamped below at
/// 2^6, with `n` = 2^(27−shift).  `shift = 0` reproduces the paper exactly.
pub fn scaled_batch_sizes(shift: u32) -> SweepConfig {
    let hi = 27u32.saturating_sub(shift).max(7);
    let lo = 15u32.saturating_sub(shift).max(6);
    SweepConfig {
        total_elements: 1usize << hi,
        batch_sizes: (lo..=hi).map(|p| 1usize << p).collect(),
        seed: 0xC0FFEE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_table_ii() {
        let sizes = paper_batch_sizes();
        assert_eq!(sizes.first(), Some(&(1 << 15)));
        assert_eq!(sizes.last(), Some(&(1 << 27)));
        assert_eq!(sizes.len(), 13);
    }

    #[test]
    fn unscaled_sweep_is_the_paper_sweep() {
        let cfg = scaled_batch_sizes(0);
        assert_eq!(cfg.total_elements, 1 << 27);
        assert_eq!(cfg.batch_sizes, paper_batch_sizes());
    }

    #[test]
    fn scaled_sweep_preserves_ratios() {
        let cfg = scaled_batch_sizes(8);
        assert_eq!(cfg.total_elements, 1 << 19);
        assert_eq!(cfg.batch_sizes.first(), Some(&(1 << 7)));
        assert_eq!(cfg.batch_sizes.last(), Some(&(1 << 19)));
        // The ratio n / b spans the same range as the paper's sweep.
        assert_eq!(cfg.num_batches(*cfg.batch_sizes.first().unwrap()), 1 << 12);
        assert_eq!(cfg.num_batches(*cfg.batch_sizes.last().unwrap()), 1);
    }

    #[test]
    fn extreme_shift_is_clamped() {
        let cfg = scaled_batch_sizes(30);
        assert!(cfg.total_elements >= 1 << 7);
        assert!(!cfg.batch_sizes.is_empty());
        assert!(cfg.batch_sizes.iter().all(|&b| b >= 1 << 6));
    }

    #[test]
    fn num_batches_divides() {
        let cfg = scaled_batch_sizes(10);
        for &b in &cfg.batch_sizes {
            assert_eq!(cfg.num_batches(b) * b, cfg.total_elements);
        }
    }
}
