//! Workspace facade for the GPU LSM reproduction.
//!
//! This tiny crate exists so the repository-level `examples/` and `tests/`
//! can use every workspace crate through one dependency.  Library users
//! should depend on the individual crates ([`gpu_lsm`], [`gpu_sim`],
//! [`gpu_primitives`], [`gpu_baselines`], [`lsm_workloads`]) directly.

pub use gpu_baselines;
pub use gpu_lsm;
pub use gpu_primitives;
pub use gpu_sim;
pub use lsm_workloads;

/// Convenience re-exports used by the examples.
pub mod prelude {
    pub use gpu_baselines::{CuckooHashTable, SortedArray};
    pub use gpu_lsm::{GpuLsm, LsmStats, Op, RangeResult, UpdateBatch};
    pub use gpu_sim::{Device, DeviceConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_core_types() {
        use super::prelude::*;
        let device = std::sync::Arc::new(Device::new(DeviceConfig::small()));
        let lsm = GpuLsm::new(device, 16).unwrap();
        assert!(lsm.is_empty());
    }
}
