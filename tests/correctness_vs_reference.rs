//! End-to-end correctness: the GPU LSM must answer every query exactly like
//! a reference `BTreeMap` dictionary, across arbitrary interleavings of
//! batched insertions, deletions, cleanups and bulk builds.

use std::collections::BTreeMap;
use std::sync::Arc;

use gpu_lsm::{GpuLsm, UpdateBatch};
use gpu_sim::{Device, DeviceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn device() -> Arc<Device> {
    Arc::new(Device::new(DeviceConfig::small()))
}

/// Apply one mixed batch both to the LSM and to the reference map.
/// Keys are distinct within the batch so the sequential reference semantics
/// coincide with the LSM's batch semantics.
fn apply_random_batch(
    lsm: &mut GpuLsm,
    reference: &mut BTreeMap<u32, u32>,
    batch_size: usize,
    key_domain: u32,
    delete_prob: f64,
    rng: &mut StdRng,
) {
    let mut batch = UpdateBatch::with_capacity(batch_size);
    let mut used = std::collections::HashSet::new();
    while used.len() < batch_size {
        let key = rng.gen_range(0..key_domain);
        if !used.insert(key) {
            continue;
        }
        if rng.gen_bool(delete_prob) {
            batch.delete(key);
            reference.remove(&key);
        } else {
            let value = rng.gen::<u32>();
            batch.insert(key, value);
            reference.insert(key, value);
        }
    }
    lsm.update(&batch).expect("update batch");
}

fn check_against_reference(lsm: &GpuLsm, reference: &BTreeMap<u32, u32>, key_domain: u32) {
    // Lookups over the whole key domain.
    let queries: Vec<u32> = (0..key_domain).collect();
    let results = lsm.lookup(&queries);
    for (q, got) in queries.iter().zip(results.iter()) {
        assert_eq!(got, &reference.get(q).copied(), "lookup({q})");
    }

    // Count and range queries over a grid of intervals.
    let intervals: Vec<(u32, u32)> = (0..16)
        .map(|i| {
            let lo = i * key_domain / 16;
            let hi = ((i + 2) * key_domain / 16).min(key_domain - 1);
            (lo, hi)
        })
        .collect();
    let counts = lsm.count(&intervals);
    let ranges = lsm.range(&intervals);
    for (qi, &(lo, hi)) in intervals.iter().enumerate() {
        let expected: Vec<(u32, u32)> = reference.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(counts[qi] as usize, expected.len(), "count({lo},{hi})");
        let got: Vec<(u32, u32)> = ranges.iter_query(qi).collect();
        assert_eq!(got, expected, "range({lo},{hi})");
    }
}

#[test]
fn random_mixed_workload_matches_btreemap() {
    let mut rng = StdRng::seed_from_u64(1234);
    let batch_size = 128;
    let key_domain = 2000u32;
    let mut lsm = GpuLsm::new(device(), batch_size).unwrap();
    let mut reference = BTreeMap::new();

    for step in 0..12 {
        apply_random_batch(
            &mut lsm,
            &mut reference,
            batch_size,
            key_domain,
            0.35,
            &mut rng,
        );
        lsm.check_invariants().expect("invariants");
        if step % 4 == 3 {
            check_against_reference(&lsm, &reference, key_domain);
        }
    }
    check_against_reference(&lsm, &reference, key_domain);
}

#[test]
fn cleanup_never_changes_answers() {
    let mut rng = StdRng::seed_from_u64(77);
    let batch_size = 64;
    let key_domain = 1000u32;
    let mut lsm = GpuLsm::new(device(), batch_size).unwrap();
    let mut reference = BTreeMap::new();

    for step in 0..10 {
        apply_random_batch(
            &mut lsm,
            &mut reference,
            batch_size,
            key_domain,
            0.45,
            &mut rng,
        );
        if step % 2 == 1 {
            let stats_before = lsm.stats();
            lsm.cleanup();
            lsm.check_invariants().expect("invariants after cleanup");
            let stats_after = lsm.stats();
            assert!(stats_after.total_elements <= stats_before.total_elements);
            assert_eq!(stats_after.valid_elements, reference.len());
            check_against_reference(&lsm, &reference, key_domain);
        }
    }
}

#[test]
fn bulk_build_agrees_with_incremental_insertion() {
    let mut rng = StdRng::seed_from_u64(5);
    let batch_size = 256;
    let pairs: Vec<(u32, u32)> = {
        let mut keys: Vec<u32> = (0..2048u32).collect();
        // Shuffle keys to avoid a pre-sorted input.
        for i in (1..keys.len()).rev() {
            keys.swap(i, rng.gen_range(0..=i));
        }
        keys.into_iter().map(|k| (k, k * 3 + 1)).collect()
    };

    let bulk = GpuLsm::bulk_build(device(), batch_size, &pairs).unwrap();
    let mut incremental = GpuLsm::new(device(), batch_size).unwrap();
    for chunk in pairs.chunks(batch_size) {
        incremental.insert(chunk).unwrap();
    }

    bulk.check_invariants().unwrap();
    incremental.check_invariants().unwrap();
    let queries: Vec<u32> = (0..2500u32).collect();
    assert_eq!(bulk.lookup(&queries), incremental.lookup(&queries));
    let intervals = vec![(0u32, 100u32), (500, 1500), (2000, 2400)];
    assert_eq!(bulk.count(&intervals), incremental.count(&intervals));
}

#[test]
fn values_survive_many_replacements() {
    let batch_size = 32;
    let mut lsm = GpuLsm::new(device(), batch_size).unwrap();
    // Re-insert the same keys 20 times with increasing values.
    for round in 0..20u32 {
        let pairs: Vec<(u32, u32)> = (0..batch_size as u32)
            .map(|k| (k, round * 100 + k))
            .collect();
        lsm.insert(&pairs).unwrap();
    }
    let queries: Vec<u32> = (0..batch_size as u32).collect();
    let results = lsm.lookup(&queries);
    for (k, r) in queries.iter().zip(results.iter()) {
        assert_eq!(*r, Some(19 * 100 + k), "key {k} should hold the last value");
    }
    // Count sees each key once despite 20 copies.
    assert_eq!(
        lsm.count(&[(0, batch_size as u32 - 1)]),
        vec![batch_size as u32]
    );
    // After cleanup only one copy per key remains.
    let report = lsm.cleanup();
    assert_eq!(report.valid_elements, batch_size);
    assert_eq!(lsm.lookup(&queries), results);
}

#[test]
fn interleaved_delete_reinsert_cycles() {
    let batch_size = 16;
    let mut lsm = GpuLsm::new(device(), batch_size).unwrap();
    let keys: Vec<u32> = (0..batch_size as u32).collect();
    for cycle in 0..8u32 {
        let pairs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, cycle)).collect();
        lsm.insert(&pairs).unwrap();
        assert_eq!(lsm.lookup(&[0]), vec![Some(cycle)]);
        lsm.delete(&keys).unwrap();
        assert_eq!(lsm.lookup(&[0]), vec![None]);
        assert_eq!(lsm.count(&[(0, batch_size as u32)]), vec![0]);
    }
    // Final state: everything deleted.
    let report = lsm.cleanup();
    assert_eq!(report.valid_elements, 0);
    assert!(lsm.is_empty());
}
