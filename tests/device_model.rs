//! Tests of the substrate's accounting: every LSM operation must leave a
//! faithful trace in the device's traffic metrics, memory tracker and cost
//! model — that accounting is what makes the reproduction's "modelled K40c
//! time" meaningful.

use std::sync::Arc;

use gpu_lsm::GpuLsm;
use gpu_sim::{Device, DeviceConfig};
use lsm_workloads::unique_random_pairs;

fn device() -> Arc<Device> {
    Arc::new(Device::new(DeviceConfig::small()))
}

#[test]
fn insertion_records_sort_and_merge_traffic() {
    let dev = device();
    let mut lsm = GpuLsm::new(dev.clone(), 512).unwrap();
    for chunk in unique_random_pairs(4 * 512, 1).chunks(512) {
        lsm.insert(chunk).unwrap();
    }
    let snapshot = dev.metrics().snapshot();
    // The batch sort and the carry-chain merges must both appear.  Batches
    // of 512 are below the radix sort's comparison cutoff, so the sort
    // traffic shows up under the small-sort kernel.
    assert!(
        snapshot.contains_key("radix_small_sort"),
        "missing batch sort traffic"
    );
    assert!(snapshot.contains_key("merge"), "missing merge traffic");
    // Inserting 4 batches triggers 3 carry merges (r: 1, 10, 11, 100).
    assert_eq!(snapshot["merge"].launches, 3);
    // All of this is streaming traffic, so the bandwidth term dominates.
    let est = dev.estimated_time();
    assert!(est.total_seconds > 0.0);
    assert!(est.bandwidth_seconds >= est.latency_seconds);
}

#[test]
fn lookups_are_charged_as_scattered_probes() {
    let dev = device();
    let pairs = unique_random_pairs(8 * 1024, 2);
    let lsm = GpuLsm::bulk_build(dev.clone(), 1024, &pairs).unwrap();
    dev.reset_counters();
    let queries: Vec<u32> = pairs.iter().take(2048).map(|&(k, _)| k).collect();
    // Pin the individual path: the adaptive `lookup` may legitimately
    // reroute a batch this large through the bulk sorted kernel, whose
    // traffic is charged under a different name.
    let _ = lsm.lookup_individual(&queries);
    let snapshot = dev.metrics().snapshot();
    let lookup = &snapshot["lsm_lookup"];
    assert!(
        lookup.scattered_transactions > 0,
        "lookups must pay random-access probes"
    );
    assert!(lookup.scattered_read_bytes > 0);
    // Probes per query are bounded by levels × log2(level size); the
    // fence-narrowed searches must come in at or under that.
    let max_probes = lsm.worst_case_lookup_probes() as u64 * queries.len() as u64;
    assert!(lookup.scattered_transactions <= max_probes);
}

#[test]
fn filter_probes_are_charged_as_coalesced_block_reads() {
    let dev = device();
    // Bulk-built levels of this size carry Bloom filters; an all-miss
    // batch must be answered mostly by single-block filter reads, with far
    // fewer scattered probes than the unfiltered worst case.
    let pairs = unique_random_pairs(8 * 1024, 7);
    let lsm = GpuLsm::bulk_build(dev.clone(), 1024, &pairs).unwrap();
    let resident: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
    let misses = lsm_workloads::missing_lookups(&resident, 2048, 8);
    dev.reset_counters();
    let results = lsm.lookup_individual(&misses);
    assert!(results.iter().all(|r| r.is_none()));
    let snapshot = dev.metrics().snapshot();
    let lookup = &snapshot["lsm_lookup"];
    let stats = lsm.stats();
    if stats.filter_bytes > 0 {
        assert!(
            lookup.coalesced_read_bytes >= misses.len() as u64 * 64,
            "each filter consultation is one coalesced cache-line read"
        );
        assert!(stats.filter_probes >= misses.len() as u64);
        assert!(
            stats.filter_skips > 0,
            "misses should be skipped by filters"
        );
        // Only false positives fall through to binary searches.
        let max_probes = lsm.worst_case_lookup_probes() as u64 * misses.len() as u64;
        assert!(
            lookup.scattered_transactions < max_probes / 2,
            "filters must absorb most miss probes: {} vs worst case {}",
            lookup.scattered_transactions,
            max_probes
        );
    }
}

#[test]
fn estimated_device_time_scales_with_problem_size() {
    let dev = device();
    let small = unique_random_pairs(1 << 12, 3);
    let large = unique_random_pairs(1 << 15, 3);
    let _ = GpuLsm::bulk_build(dev.clone(), 1 << 10, &small).unwrap();
    let t_small = dev.estimated_time().total_seconds;
    dev.reset_counters();
    let _ = GpuLsm::bulk_build(dev.clone(), 1 << 10, &large).unwrap();
    let t_large = dev.estimated_time().total_seconds;
    assert!(
        t_large > t_small * 4.0,
        "8x the data should cost clearly more modelled time ({t_small} vs {t_large})"
    );
}

#[test]
fn memory_footprint_follows_the_structure_lifecycle() {
    let dev = device();
    let pairs = unique_random_pairs(1 << 14, 4);
    let mut lsm = GpuLsm::bulk_build(dev.clone(), 1 << 11, &pairs).unwrap();
    let after_build = lsm.memory_bytes();
    assert!(
        after_build >= pairs.len() * 8,
        "keys + values must be resident"
    );
    // Replacing every key doubles the resident data until cleanup.
    for chunk in pairs.chunks(1 << 11) {
        lsm.insert(chunk).unwrap();
    }
    let with_stale = lsm.memory_bytes();
    assert!(
        with_stale >= 2 * after_build - 64,
        "stale copies occupy memory"
    );
    lsm.cleanup();
    let after_cleanup = lsm.memory_bytes();
    assert!(
        after_cleanup < with_stale,
        "cleanup must shrink the footprint"
    );
    assert!(after_cleanup >= pairs.len() * 8);
    // Device buffers allocated explicitly on the device are still tracked.
    let buf = dev.alloc_zeroed::<u64>("scratch", 1024);
    assert!(dev.memory().live_bytes() >= buf.size_bytes());
    drop(buf);
    assert_eq!(dev.memory().live_bytes(), 0);
}

#[test]
fn per_phase_timers_record_the_pipeline_stages() {
    let dev = device();
    // Three batches leave levels 0 and 1 occupied, so the cleanup pass has
    // levels to merge.
    let pairs = unique_random_pairs(3 << 11, 5);
    let mut lsm = GpuLsm::new(dev.clone(), 1 << 11).unwrap();
    for chunk in pairs.chunks(1 << 11) {
        lsm.insert(chunk).unwrap();
    }
    let _ = lsm.lookup(&[1, 2, 3]);
    let _ = lsm.count(&[(0, 1000)]);
    let _ = lsm.range(&[(0, 1000)]);
    lsm.cleanup();
    let phases = dev.timer().snapshot();
    for phase in [
        "insert::sort_batch",
        "insert::merge",
        "lookup",
        "count::gather",
        "count::validate",
        "range::gather",
        "range::validate",
        "cleanup::merge",
        "cleanup::multisplit",
    ] {
        assert!(phases.contains_key(phase), "missing phase timer: {phase}");
        assert!(phases[phase].count > 0);
    }
    assert!(dev.timer().total() > std::time::Duration::ZERO);
}

#[test]
fn cuckoo_and_sorted_array_share_the_same_accounting() {
    use gpu_baselines::{CuckooHashTable, SortedArray};
    let dev = device();
    let pairs = unique_random_pairs(1 << 13, 6);
    let sa = SortedArray::bulk_build(dev.clone(), &pairs);
    let cuckoo = CuckooHashTable::bulk_build(dev.clone(), &pairs);
    dev.reset_counters();
    let queries: Vec<u32> = pairs.iter().map(|&(k, _)| k).take(1024).collect();
    let _ = sa.lookup(&queries);
    let _ = cuckoo.lookup(&queries);
    let snap = dev.metrics().snapshot();
    assert!(snap.contains_key("sa_lookup"));
    assert!(snap.contains_key("cuckoo_lookup"));
    // The sorted array's binary searches probe more than the cuckoo table's
    // constant number of buckets — the very asymmetry Table III measures.
    assert!(
        snap["sa_lookup"].scattered_transactions > snap["cuckoo_lookup"].scattered_transactions,
        "SA probes {} should exceed cuckoo probes {}",
        snap["sa_lookup"].scattered_transactions,
        snap["cuckoo_lookup"].scattered_transactions
    );
}
