//! Stress and adversarial workloads: skewed key popularity, sorted and
//! reverse-sorted runs, duplicate-only batches, and hot-set replacement
//! streams.  These exercise the semantics rules (§III-A) and the stale-
//! element machinery far harder than the paper's uniform workloads.

use std::collections::BTreeMap;
use std::sync::Arc;

use gpu_lsm::GpuLsm;
use gpu_sim::{Device, DeviceConfig};
use lsm_workloads::distributions::{
    all_duplicates, hot_set_batches, reverse_sorted_run, sorted_run, ZipfKeys,
};

fn device() -> Arc<Device> {
    Arc::new(Device::new(DeviceConfig::small()))
}

#[test]
fn sorted_and_reverse_sorted_runs_round_trip() {
    let b = 256;
    let mut lsm = GpuLsm::new(device(), b).unwrap();
    lsm.insert(&sorted_run(0, b)).unwrap();
    lsm.insert(&reverse_sorted_run(10_000, b)).unwrap();
    lsm.insert(&sorted_run(20_000, b)).unwrap();
    lsm.check_invariants().unwrap();
    // Every inserted key is findable.
    assert_eq!(lsm.count(&[(0, 255)]), vec![256]);
    assert_eq!(lsm.count(&[(10_000 - 255, 10_000)]), vec![256]);
    assert_eq!(lsm.count(&[(20_000, 20_000 + 255)]), vec![256]);
    assert_eq!(
        lsm.lookup(&[0, 10_000, 20_255]),
        vec![Some(0), Some(0), Some(255)]
    );
}

#[test]
fn duplicate_only_batches_keep_exactly_one_visible() {
    let b = 64;
    let mut lsm = GpuLsm::new(device(), b).unwrap();
    lsm.insert(&all_duplicates(42, b)).unwrap();
    lsm.insert(&all_duplicates(42, b)).unwrap();
    lsm.insert(&all_duplicates(43, b)).unwrap();
    lsm.check_invariants().unwrap();
    assert_eq!(lsm.count(&[(0, 100)]), vec![2]); // keys 42 and 43
                                                 // The visible value for 42 comes from the second batch (most recent),
                                                 // and within that batch the first pushed duplicate wins.
    assert_eq!(lsm.lookup(&[42]), vec![Some(0)]);
    let report = lsm.cleanup();
    assert_eq!(report.valid_elements, 2);
    assert_eq!(lsm.count(&[(0, 100)]), vec![2]);
}

#[test]
fn zipf_skewed_updates_match_reference_and_cleanup_reclaims_space() {
    let b = 128;
    let universe = 512u32;
    let mut zipf = ZipfKeys::new(universe, 0.9, 7);
    let mut lsm = GpuLsm::new(device(), b).unwrap();
    let mut reference: BTreeMap<u32, u32> = BTreeMap::new();

    for round in 0..12u32 {
        // Skewed keys, deduplicated within the batch so the sequential
        // reference agrees with the batch semantics.
        let mut batch_keys = Vec::with_capacity(b);
        let mut seen = std::collections::HashSet::new();
        while batch_keys.len() < b {
            let k = zipf.sample();
            if seen.insert(k) {
                batch_keys.push(k);
            }
        }
        let pairs: Vec<(u32, u32)> = batch_keys.iter().map(|&k| (k, round)).collect();
        lsm.insert(&pairs).unwrap();
        for &(k, v) in &pairs {
            reference.insert(k, v);
        }
    }
    lsm.check_invariants().unwrap();

    // Heavy replacement means most resident elements are stale.
    let stats = lsm.stats();
    assert_eq!(stats.valid_elements, reference.len());
    assert!(
        stats.stale_fraction() > 0.3,
        "hot-key replacement should accumulate staleness, got {:.2}",
        stats.stale_fraction()
    );

    // Queries agree with the reference before and after cleanup.
    let queries: Vec<u32> = (0..universe).collect();
    let expected: Vec<Option<u32>> = queries.iter().map(|k| reference.get(k).copied()).collect();
    assert_eq!(lsm.lookup(&queries), expected);
    lsm.cleanup();
    assert_eq!(lsm.lookup(&queries), expected);
    assert!(lsm.stats().stale_fraction() < stats.stale_fraction());
}

#[test]
fn hot_set_stream_accumulates_and_cleans_predictably() {
    let b = 128;
    let batches = hot_set_batches(b, 10, 32, 0.6, 11);
    let mut lsm = GpuLsm::new(device(), b).unwrap();
    let mut reference: BTreeMap<u32, u32> = BTreeMap::new();
    for batch in &batches {
        // Deduplicate within the batch (keep the first occurrence, matching
        // the LSM's rule 4 resolution).
        let mut seen = std::collections::HashSet::new();
        let deduped: Vec<(u32, u32)> = batch
            .iter()
            .copied()
            .filter(|&(k, _)| seen.insert(k))
            .collect();
        lsm.insert(&deduped).unwrap();
        for &(k, v) in &deduped {
            reference.insert(k, v);
        }
    }
    let stats = lsm.stats();
    assert_eq!(stats.valid_elements, reference.len());
    // The hot keys (0..32) must hold their most recent values.
    let hot_queries: Vec<u32> = (0..32).collect();
    let expected: Vec<Option<u32>> = hot_queries
        .iter()
        .map(|k| reference.get(k).copied())
        .collect();
    assert_eq!(lsm.lookup(&hot_queries), expected);
    let report = lsm.cleanup();
    assert_eq!(report.valid_elements, reference.len());
    assert_eq!(lsm.lookup(&hot_queries), expected);
}

#[test]
fn alternating_insert_delete_of_the_same_hot_key() {
    // Pathological churn on a single key across many batches.
    let b = 16;
    let mut lsm = GpuLsm::new(device(), b).unwrap();
    for round in 0..20u32 {
        if round % 2 == 0 {
            let mut pairs = vec![(7u32, round)];
            pairs.extend((1000 + round * 16..1000 + round * 16 + 15).map(|k| (k, 0)));
            lsm.insert(&pairs).unwrap();
            assert_eq!(lsm.lookup(&[7]), vec![Some(round)], "round {round}");
        } else {
            lsm.delete(&[7]).unwrap();
            assert_eq!(lsm.lookup(&[7]), vec![None], "round {round}");
        }
        lsm.check_invariants().unwrap();
    }
    // Ended on a delete round (round 19), so key 7 is absent.
    assert_eq!(lsm.count(&[(7, 7)]), vec![0]);
    lsm.cleanup();
    assert_eq!(lsm.lookup(&[7]), vec![None]);
}
