//! Concurrency stress: reader threads hammer `lookup` / `count` / `range`
//! while writer threads apply update batches (and a janitor thread runs
//! cleanups), against both the sharded service and the single-lock wrapper.
//!
//! The checked property is the paper's phase semantics (§III-A rule 2)
//! applied per shard: every answer a reader observes must correspond to the
//! state after *some prefix* of the update batches applied to the queried
//! shard — never a torn batch, and never a state that later runs backwards.
//! The workload is constructed so prefixes are recognisable:
//!
//! * each writer owns a disjoint, single-shard block of keys;
//! * round `r` writes value `r` into the block (odd rounds insert every
//!   key; even rounds delete the block's first half and re-insert the
//!   second half), so each reachable state is exactly characterised by its
//!   round number;
//! * a single-block query therefore must observe one of the reachable
//!   states, and per-key values must be non-decreasing over time from any
//!   one reader's perspective (a shard's state only moves forward).
//!
//! Run with `LSM_PAR_CUTOFF=1` (the CI matrix does) to force every
//! internally parallel path through the worker pool even at these small
//! sizes, stressing nested-parallelism and pool reentrancy underneath the
//! shard locks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use gpu_lsm::{
    AdmissionConfig, AdmittedLsm, ConcurrentGpuLsm, GpuLsm, ShardRouter, ShardedLsm, UpdateBatch,
};
use gpu_sim::{Device, DeviceConfig};

/// Keys per writer block (must be even; first half gets deleted on even
/// rounds).
const BLOCK: u32 = 64;
/// Update rounds per writer.
const ROUNDS: u32 = 24;
/// Reader threads per backend.
const READERS: usize = 3;
/// Writer threads (= key blocks) per backend.
const WRITERS: usize = 4;

/// The per-shard update/query surface every backend exposes.
trait Backend: Clone + Send + Sync + 'static {
    fn apply(&self, batch: &UpdateBatch);
    fn lookup(&self, keys: &[u32]) -> Vec<Option<u32>>;
    fn count(&self, intervals: &[(u32, u32)]) -> Vec<u32>;
    fn range_pairs(&self, lo: u32, hi: u32) -> Vec<(u32, u32)>;
    fn cleanup(&self);
    /// Drain any asynchronous write pipeline (no-op for synchronous
    /// backends); called once the writers finish, before the final
    /// quiescent-state assertions.
    fn quiesce(&self) {}
}

impl Backend for ShardedLsm {
    fn apply(&self, batch: &UpdateBatch) {
        self.update(batch).expect("valid batch");
    }
    fn lookup(&self, keys: &[u32]) -> Vec<Option<u32>> {
        ShardedLsm::lookup(self, keys)
    }
    fn count(&self, intervals: &[(u32, u32)]) -> Vec<u32> {
        ShardedLsm::count(self, intervals)
    }
    fn range_pairs(&self, lo: u32, hi: u32) -> Vec<(u32, u32)> {
        ShardedLsm::range(self, &[(lo, hi)]).iter_query(0).collect()
    }
    fn cleanup(&self) {
        ShardedLsm::cleanup(self);
    }
}

impl Backend for AdmittedLsm {
    fn apply(&self, batch: &UpdateBatch) {
        self.submit(batch).expect("valid batch");
    }
    fn lookup(&self, keys: &[u32]) -> Vec<Option<u32>> {
        AdmittedLsm::lookup(self, keys)
    }
    fn count(&self, intervals: &[(u32, u32)]) -> Vec<u32> {
        AdmittedLsm::count(self, intervals)
    }
    fn range_pairs(&self, lo: u32, hi: u32) -> Vec<(u32, u32)> {
        AdmittedLsm::range(self, &[(lo, hi)])
            .iter_query(0)
            .collect()
    }
    fn cleanup(&self) {
        AdmittedLsm::cleanup(self).expect("admission pipeline alive");
    }
    fn quiesce(&self) {
        self.flush().expect("admission pipeline alive");
    }
}

impl Backend for ConcurrentGpuLsm {
    fn apply(&self, batch: &UpdateBatch) {
        self.update(batch).expect("valid batch");
    }
    fn lookup(&self, keys: &[u32]) -> Vec<Option<u32>> {
        ConcurrentGpuLsm::lookup(self, keys)
    }
    fn count(&self, intervals: &[(u32, u32)]) -> Vec<u32> {
        ConcurrentGpuLsm::count(self, intervals)
    }
    fn range_pairs(&self, lo: u32, hi: u32) -> Vec<(u32, u32)> {
        ConcurrentGpuLsm::range(self, &[(lo, hi)])
            .iter_query(0)
            .collect()
    }
    fn cleanup(&self) {
        ConcurrentGpuLsm::cleanup(self);
    }
}

/// Low key of writer `w`'s block.  Blocks sit at distinct shard low bounds
/// (8-way sharding), so each block lives entirely inside one shard and
/// single-block queries are per-shard atomic.
fn block_base(w: usize) -> u32 {
    let router = ShardRouter::new(8).unwrap();
    router.shard_bounds(2 * w).0
}

/// The batch of round `r` (1-based) for the block at `base`:
/// odd rounds insert all `BLOCK` keys with value `r`; even rounds delete
/// the first half and re-insert the second half with value `r`.
fn round_batch(base: u32, r: u32) -> UpdateBatch {
    let mut batch = UpdateBatch::with_capacity(BLOCK as usize);
    if r % 2 == 1 {
        for k in 0..BLOCK {
            batch.insert(base + k, r);
        }
    } else {
        for k in 0..BLOCK / 2 {
            batch.delete(base + k);
        }
        for k in BLOCK / 2..BLOCK {
            batch.insert(base + k, r);
        }
    }
    batch
}

/// Check a single-block observation against the reachable round states.
/// Returns the round the observation corresponds to (0 = before round 1).
///
/// State after round `r`: odd `r` → all keys present with value `r`; even
/// `r` → first half absent, second half value `r`; `r = 0` → empty.
fn classify_block_state(pairs: &[(u32, u32)], base: u32) -> u32 {
    if pairs.is_empty() {
        return 0;
    }
    let values: Vec<u32> = pairs.iter().map(|&(_, v)| v).collect();
    let r = values[0];
    assert!(
        values.iter().all(|&v| v == r),
        "block {base}: a single-shard snapshot must be one round, got {values:?}"
    );
    assert!(
        (1..=ROUNDS).contains(&r),
        "block {base}: impossible round {r}"
    );
    let keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
    if r % 2 == 1 {
        let expected: Vec<u32> = (0..BLOCK).map(|k| base + k).collect();
        assert_eq!(
            keys, expected,
            "block {base}: odd round {r} must show every key"
        );
    } else {
        let expected: Vec<u32> = (BLOCK / 2..BLOCK).map(|k| base + k).collect();
        assert_eq!(
            keys, expected,
            "block {base}: even round {r} must show exactly the second half"
        );
    }
    r
}

fn stress<B: Backend>(backend: B) {
    stress_with(backend, None::<fn()>);
}

/// The stress harness, optionally with a **churn** thread that mutates the
/// shard topology (splits/merges) while the writers, readers and janitor
/// run — the rebalancing counterpart of the janitor's cleanup churn.  The
/// churn closure runs one split+merge cycle per call, so topology changes
/// always come in pairs and the final shard layout equals the initial one.
fn stress_with<B: Backend, F: Fn() + Send + Sync>(backend: B, churn: Option<F>) {
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Writers: one block each, ROUNDS batches, applied in order.
        let mut writer_handles = Vec::new();
        for w in 0..WRITERS {
            let backend = backend.clone();
            writer_handles.push(scope.spawn(move || {
                let base = block_base(w);
                for r in 1..=ROUNDS {
                    backend.apply(&round_batch(base, r));
                }
            }));
        }

        // Janitor: cleanups interleave with everything else; cleanup is an
        // exclusive phase and must be invisible to query answers.
        let janitor = {
            let backend = backend.clone();
            let done = &done;
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    backend.cleanup();
                    std::thread::yield_now();
                }
            })
        };

        // Churn: split/merge cycles racing the traffic (when provided).
        let churn_handle = churn.as_ref().map(|churn| {
            let done = &done;
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    churn();
                    std::thread::yield_now();
                }
            })
        });

        // Readers: validate every observation against the reachable states
        // and require per-key monotonicity (states never run backwards).
        let mut reader_handles = Vec::new();
        for _ in 0..READERS {
            let backend = backend.clone();
            let done = &done;
            reader_handles.push(scope.spawn(move || {
                // Last observed round per block (observations are made
                // under a single shard's read lock, so they're ordered).
                let mut last_round = [0u32; WRITERS];
                let mut last_value: std::collections::HashMap<u32, u32> =
                    std::collections::HashMap::new();
                let mut observations = 0usize;
                loop {
                    for (w, last) in last_round.iter_mut().enumerate() {
                        let base = block_base(w);

                        // Range: a full single-shard snapshot of the block.
                        let pairs = backend.range_pairs(base, base + BLOCK - 1);
                        let r = classify_block_state(&pairs, base);
                        assert!(
                            r >= *last,
                            "block {w} ran backwards: round {r} after {last}"
                        );
                        *last = r;

                        // Count: must match a reachable state's cardinality.
                        let c = backend.count(&[(base, base + BLOCK - 1)])[0];
                        assert!(
                            c == 0 || c == BLOCK / 2 || c == BLOCK,
                            "block {w}: count {c} matches no round prefix"
                        );

                        // Lookups: per-key values only ever increase.
                        let keys: Vec<u32> = (0..BLOCK).map(|k| base + k).collect();
                        for (k, v) in keys.iter().zip(backend.lookup(&keys)) {
                            if let Some(v) = v {
                                assert!((1..=ROUNDS).contains(&v), "key {k}: bad value {v}");
                                let prev = last_value.entry(*k).or_insert(0);
                                assert!(v >= *prev, "key {k} ran backwards: {v} after {prev}");
                                *prev = v;
                            }
                        }
                        observations += 1;
                    }
                    // Check for shutdown only after a full sweep so every
                    // reader validates each block at least once, even when
                    // the writers drain before the readers get scheduled.
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                }
                observations
            }));
        }

        for h in writer_handles {
            h.join().expect("writer thread panicked");
        }
        backend.quiesce();
        done.store(true, Ordering::Release);
        janitor.join().expect("janitor thread panicked");
        if let Some(h) = churn_handle {
            h.join().expect("churn thread panicked");
        }
        for h in reader_handles {
            let obs = h.join().expect("reader thread panicked");
            assert!(obs > 0, "reader never got to observe anything");
        }
    });

    // Quiescent end state: every block at its final round (ROUNDS is even:
    // first half deleted, second half = ROUNDS).
    for w in 0..WRITERS {
        let base = block_base(w);
        let pairs = backend.range_pairs(base, base + BLOCK - 1);
        assert_eq!(classify_block_state(&pairs, base), ROUNDS);
        assert_eq!(backend.count(&[(base, base + BLOCK - 1)])[0], BLOCK / 2);
    }
}

fn device() -> Arc<Device> {
    Arc::new(Device::new(DeviceConfig::small()))
}

#[test]
fn sharded_lsm_under_concurrent_mixed_fire() {
    let lsm = ShardedLsm::new(device(), BLOCK as usize, 8).unwrap();
    stress(lsm.clone());
    lsm.check_invariants().unwrap();
}

#[test]
fn single_lock_wrapper_under_concurrent_mixed_fire() {
    let lsm = ConcurrentGpuLsm::new(GpuLsm::new(device(), BLOCK as usize).unwrap());
    stress(lsm);
}

/// The admitted (pipelined) backend under the same fire: queued/coalesced
/// application must still only expose round-prefix states, with readers in
/// the eventually consistent mode racing the background applier.
#[test]
fn admitted_backend_under_concurrent_mixed_fire() {
    let lsm = AdmittedLsm::with_config(
        ShardedLsm::new(device(), BLOCK as usize, 8).unwrap(),
        AdmissionConfig {
            queue_capacity: 4,
            coalesce: true,
            read_your_writes: false,
            submit_deadline: None,
            flush_deadline: None,
        },
    );
    stress(lsm.clone());
    let stats = lsm.admission_stats();
    assert_eq!(stats.queued_batches, 0, "stress must end drained");
    lsm.check_invariants().unwrap();
}

/// Same fire with read-your-writes on and coalescing off: lookups overlay
/// the queues while interval queries drain, and the applier replays
/// batches exactly as submitted.
#[test]
fn admitted_read_your_writes_backend_under_concurrent_mixed_fire() {
    let lsm = AdmittedLsm::with_config(
        ShardedLsm::new(device(), BLOCK as usize, 8).unwrap(),
        AdmissionConfig {
            queue_capacity: 4,
            coalesce: false,
            read_your_writes: true,
            submit_deadline: None,
            flush_deadline: None,
        },
    );
    stress(lsm.clone());
    lsm.check_invariants().unwrap();
}

/// The key the rebalance-churn tests split at: the midpoint of writer 1's
/// shard, far above its 64-key block, so the block always stays whole
/// inside the left replacement shard and the round-prefix invariant keeps
/// holding across rebuilds.
fn churn_split_key() -> u32 {
    block_base(1) + (1 << 27)
}

/// Online split/merge churn against live traffic on the synchronous
/// sharded service: a churn thread repeatedly splits the shard holding
/// writer 1's block (at a key above the block) and merges the halves back,
/// while writers, readers and the cleanup janitor hammer the service.
/// Readers must keep observing only round-prefix states — the atomic
/// routing-table swap may never expose a torn domain, and the rebuild must
/// preserve the visible state exactly.
#[test]
fn sharded_rebalance_churn_under_concurrent_mixed_fire() {
    let lsm = ShardedLsm::new(device(), BLOCK as usize, 8).unwrap();
    let split_key = churn_split_key();
    let churn = {
        let lsm = lsm.clone();
        move || {
            // This thread is the only topology mutator, so the
            // router-derived indices are stable across the two calls.
            let s = lsm.router().shard_of(split_key);
            lsm.split_shard_at(s, split_key).expect("churn split");
            std::thread::yield_now();
            let s = lsm.router().shard_of(split_key);
            lsm.merge_shards(s - 1).expect("churn merge");
        }
    };
    stress_with(lsm.clone(), Some(churn));
    // Splits and merges came in pairs: the topology is back to 8 shards.
    assert_eq!(lsm.num_shards(), 8);
    let stats = lsm.stats();
    assert_eq!(stats.rebalance_splits, stats.rebalance_merges);
    assert_eq!(stats.epoch, stats.rebalance_splits + stats.rebalance_merges);
    lsm.check_invariants().unwrap();
}

/// The same rebalance churn through the admission layer's epoch-based
/// handoff: every split/merge drains the affected queues behind a targeted
/// flush barrier before the rebuild, concurrent submitters re-route, and
/// flush barriers survive queue re-layout.  Queue capacity is pinned small
/// to keep submitters sleeping on backpressure across handoffs; coalesce
/// mode follows `LSM_ADMIT_COALESCE` so the CI matrix exercises both the
/// coalescing and the replay applier.
#[test]
fn admitted_rebalance_churn_under_concurrent_mixed_fire() {
    let lsm = AdmittedLsm::with_config(
        ShardedLsm::new(device(), BLOCK as usize, 8).unwrap(),
        AdmissionConfig {
            queue_capacity: 4,
            ..AdmissionConfig::default()
        },
    );
    let split_key = churn_split_key();
    let churn = {
        let lsm = lsm.clone();
        move || {
            let s = lsm.service().router().shard_of(split_key);
            lsm.trigger_split_at(s, split_key).expect("churn split");
            std::thread::yield_now();
            let s = lsm.service().router().shard_of(split_key);
            lsm.trigger_merge(s - 1).expect("churn merge");
        }
    };
    stress_with(lsm.clone(), Some(churn));
    assert_eq!(lsm.service().num_shards(), 8);
    let stats = lsm.admission_stats();
    assert_eq!(stats.queued_batches, 0, "stress must end drained");
    assert_eq!(stats.rebalances % 2, 0, "splits and merges come in pairs");
    lsm.check_invariants().unwrap();
}
