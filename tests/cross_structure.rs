//! Cross-structure agreement: the GPU LSM, the sorted-array baseline and the
//! cuckoo hash table must give identical answers on the workloads they all
//! support, since the paper's tables compare their performance on the same
//! query streams.
//!
//! The second half of the file is the *sharded* differential suite: random
//! mixed update/delete/cleanup/query sequences replayed against
//! [`ShardedLsm`] at several shard counts, the plain [`GpuLsm`], and a
//! sequential `BTreeMap` reference model — with `shards = 1` required to be
//! byte-identical to the unsharded structure.

use std::collections::BTreeMap;
use std::sync::Arc;

use gpu_baselines::{CuckooHashTable, SortedArray};
use gpu_lsm::{GpuLsm, LsmConfig, Op, ShardRouter, ShardedLsm, UpdateBatch, MAX_KEY};
use gpu_sim::{Device, DeviceConfig};
use lsm_workloads::{
    existing_lookups, missing_lookups, range_queries_with_expected_width, unique_random_pairs,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn device() -> Arc<Device> {
    Arc::new(Device::new(DeviceConfig::small()))
}

#[test]
fn all_structures_agree_on_lookups() {
    let pairs = unique_random_pairs(20_000, 31);
    let keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
    let lsm = GpuLsm::bulk_build(device(), 1024, &pairs).unwrap();
    let sa = SortedArray::bulk_build(device(), &pairs);
    let cuckoo = CuckooHashTable::bulk_build(device(), &pairs);

    let hits = existing_lookups(&keys, 4000, 1);
    let misses = missing_lookups(&keys, 4000, 2);
    for queries in [&hits, &misses] {
        let from_lsm = lsm.lookup(queries);
        let from_sa = sa.lookup(queries);
        let from_cuckoo = cuckoo.lookup(queries);
        assert_eq!(from_lsm, from_sa);
        assert_eq!(from_lsm, from_cuckoo);
    }
}

#[test]
fn lsm_and_sa_agree_on_counts_and_ranges() {
    let pairs = unique_random_pairs(30_000, 32);
    let lsm = GpuLsm::bulk_build(device(), 2048, &pairs).unwrap();
    let sa = SortedArray::bulk_build(device(), &pairs);

    for expected_width in [4usize, 64, 512] {
        let queries = range_queries_with_expected_width(
            pairs.len(),
            expected_width,
            200,
            expected_width as u64,
        );
        let lsm_counts = lsm.count(&queries);
        let sa_counts = sa.count(&queries);
        assert_eq!(
            lsm_counts, sa_counts,
            "counts disagree at L = {expected_width}"
        );

        let lsm_ranges = lsm.range(&queries);
        let (sa_offsets, sa_keys, sa_values) = sa.range(&queries);
        assert_eq!(lsm_ranges.offsets, sa_offsets);
        assert_eq!(lsm_ranges.keys, sa_keys);
        assert_eq!(lsm_ranges.values, sa_values);
    }
}

#[test]
fn structures_agree_after_equivalent_updates() {
    // Apply the same batches (inserts of fresh keys, then deletions) to the
    // LSM and the sorted array and check the answers stay identical.
    let pairs = unique_random_pairs(8_192, 33);
    let batch = 1024;
    let mut lsm = GpuLsm::new(device(), batch).unwrap();
    let mut sa = SortedArray::new(device());
    for chunk in pairs.chunks(batch) {
        lsm.insert(chunk).unwrap();
        sa.insert_batch(chunk);
    }
    // Delete one in four keys.
    let doomed: Vec<u32> = pairs.iter().step_by(4).map(|&(k, _)| k).collect();
    for chunk in doomed.chunks(batch) {
        lsm.delete(chunk).unwrap();
        sa.delete_batch(chunk);
    }

    let keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
    let queries = existing_lookups(&keys, 3000, 3);
    assert_eq!(lsm.lookup(&queries), sa.lookup(&queries));

    let intervals = range_queries_with_expected_width(pairs.len(), 32, 100, 4);
    assert_eq!(lsm.count(&intervals), sa.count(&intervals));

    // Cleanup must not change agreement.
    lsm.cleanup();
    assert_eq!(lsm.lookup(&queries), sa.lookup(&queries));
    assert_eq!(lsm.count(&intervals), sa.count(&intervals));
}

// ---------------------------------------------------------------------------
// Sharded differential suite
// ---------------------------------------------------------------------------

/// Shard counts every differential scenario runs at.
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// Draw a key that frequently lands on or next to a shard split point (of
/// the largest tested shard count), so ranges and batches straddle shard
/// boundaries constantly instead of almost never (uniform 31-bit keys would
/// hit a boundary with probability ~2⁻²⁸).
fn boundary_biased_key(rng: &mut StdRng, router: &ShardRouter) -> u32 {
    if rng.gen_bool(0.5) {
        // On / just around a split point (split point itself included).
        let splits = router.split_points();
        let s = splits[rng.gen_range(0..splits.len())];
        let delta = rng.gen_range(0..8u32) as i64 - 4;
        (s as i64 + delta).clamp(0, MAX_KEY as i64) as u32
    } else {
        rng.gen_range(0..=MAX_KEY)
    }
}

/// One random mixed batch with distinct keys (distinctness keeps the batch
/// semantics order-independent, so the sequential reference model is exact).
fn random_batch(rng: &mut StdRng, router: &ShardRouter, size: usize) -> UpdateBatch {
    let mut batch = UpdateBatch::with_capacity(size);
    let mut used = std::collections::HashSet::new();
    while used.len() < size {
        let key = boundary_biased_key(rng, router);
        if !used.insert(key) {
            continue;
        }
        if rng.gen_bool(0.3) {
            batch.delete(key);
        } else {
            batch.insert(key, rng.gen::<u32>());
        }
    }
    batch
}

/// Interval queries that straddle shard boundaries: anchored on split
/// points, plus empties, inverted bounds and the full universe.
fn boundary_intervals(rng: &mut StdRng, router: &ShardRouter) -> Vec<(u32, u32)> {
    let splits = router.split_points();
    let mut queries = vec![(0, MAX_KEY), (MAX_KEY, 0), (5, 5)];
    for &s in &splits {
        let w = rng.gen_range(0..1 << 20);
        queries.push((s.saturating_sub(w), s.saturating_add(w).min(MAX_KEY)));
        queries.push((s, s)); // bounds equal to the split point
    }
    queries
}

/// Replay `batches` (with a cleanup after batch `cleanup_after`, if any)
/// against the sharded structures, the plain LSM and the reference model,
/// checking agreement after every batch.
fn check_differential(batches: &[UpdateBatch], cleanup_after: Option<usize>, seed: u64) {
    let device = Arc::new(Device::new(DeviceConfig::small()));
    let batch_size = batches.iter().map(|b| b.len()).max().unwrap_or(1);
    let router = ShardRouter::new(*SHARD_COUNTS.last().unwrap()).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);

    let mut plain = GpuLsm::new(device.clone(), batch_size).unwrap();
    let sharded: Vec<ShardedLsm> = SHARD_COUNTS
        .iter()
        .map(|&n| ShardedLsm::new(device.clone(), batch_size, n).unwrap())
        .collect();
    let mut model: BTreeMap<u32, u32> = BTreeMap::new();

    for (i, batch) in batches.iter().enumerate() {
        plain.update(batch).unwrap();
        for s in &sharded {
            s.update(batch).unwrap();
        }
        for op in batch.ops() {
            match *op {
                gpu_lsm::Op::Insert(k, v) => {
                    model.insert(k, v);
                }
                gpu_lsm::Op::Delete(k) => {
                    model.remove(&k);
                }
            }
        }
        if cleanup_after == Some(i) {
            plain.cleanup();
            for s in &sharded {
                s.cleanup();
            }
        }

        // Lookups: every key the batch touched (tombstone-shadowed keys
        // included) plus boundary-biased probes.
        let mut lookups: Vec<u32> = batch.ops().iter().map(|op| op.key()).collect();
        lookups.extend((0..32).map(|_| boundary_biased_key(&mut rng, &router)));
        let expected_lookups: Vec<Option<u32>> =
            lookups.iter().map(|k| model.get(k).copied()).collect();
        let plain_lookups = plain.lookup(&lookups);
        assert_eq!(plain_lookups, expected_lookups, "plain lookup, batch {i}");

        let intervals = boundary_intervals(&mut rng, &router);
        let expected_counts: Vec<u32> = intervals
            .iter()
            .map(|&(lo, hi)| {
                if lo > hi {
                    0
                } else {
                    model.range(lo..=hi).count() as u32
                }
            })
            .collect();
        let plain_counts = plain.count(&intervals);
        assert_eq!(plain_counts, expected_counts, "plain count, batch {i}");
        let plain_ranges = plain.range(&intervals);

        for (s, n) in sharded.iter().zip(SHARD_COUNTS) {
            let got_lookups = s.lookup(&lookups);
            assert_eq!(got_lookups, expected_lookups, "{n}-shard lookup, batch {i}");
            let got_counts = s.count(&intervals);
            assert_eq!(got_counts, expected_counts, "{n}-shard count, batch {i}");
            let got_ranges = s.range(&intervals);
            for (qi, &(lo, hi)) in intervals.iter().enumerate() {
                let expected: Vec<(u32, u32)> = if lo > hi {
                    Vec::new()
                } else {
                    model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect()
                };
                let got: Vec<(u32, u32)> = got_ranges.iter_query(qi).collect();
                assert_eq!(got, expected, "{n}-shard range query {qi}, batch {i}");
            }
            if n == 1 {
                // The degenerate sharding must be byte-identical to the
                // unsharded structure, offsets included.
                assert_eq!(got_lookups, plain_lookups, "1-shard vs plain, batch {i}");
                assert_eq!(got_counts, plain_counts);
                assert_eq!(got_ranges, plain_ranges);
            }
            s.check_invariants().unwrap();
        }
    }
}

#[test]
fn sharded_differential_10k_operations() {
    // The acceptance-scale run: > 10k mixed operations with continuous
    // boundary-straddling queries, a mid-sequence cleanup, all shard
    // counts, the plain LSM and the reference model in lockstep.
    let router = ShardRouter::new(*SHARD_COUNTS.last().unwrap()).unwrap();
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let batches: Vec<UpdateBatch> = (0..42)
        .map(|_| random_batch(&mut rng, &router, 256))
        .collect();
    let total_ops: usize = batches.iter().map(|b| b.len()).sum();
    assert!(total_ops >= 10_000, "suite must replay at least 10k ops");
    check_differential(&batches, Some(20), 0xFACE);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomised variant: arbitrary batch counts/sizes and cleanup point.
    #[test]
    fn sharded_differential_random_sequences(
        seed in any::<u64>(),
        num_batches in 1usize..8,
        batch_size in 1usize..48,
        cleanup_at in 0usize..9,
    ) {
        let router = ShardRouter::new(*SHARD_COUNTS.last().unwrap()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let batches: Vec<UpdateBatch> = (0..num_batches)
            .map(|_| random_batch(&mut rng, &router, batch_size))
            .collect();
        // 8 encodes "no cleanup"; 0..=7 cleans up after that batch.
        let cleanup = (cleanup_at < 8).then_some(cleanup_at);
        check_differential(&batches, cleanup, seed ^ 0x51AB);
    }
}

/// Check the sharded service and the plain LSM against the model on the
/// batch's own keys plus probes/intervals, including full range contents
/// (which also proves reassembled ranges are globally key-ordered, since
/// the `BTreeMap` iteration is).
fn assert_matches_model(
    sharded: &ShardedLsm,
    plain: &GpuLsm,
    model: &BTreeMap<u32, u32>,
    lookups: &[u32],
    intervals: &[(u32, u32)],
    ctx: &str,
) {
    let expected_lookups: Vec<Option<u32>> =
        lookups.iter().map(|k| model.get(k).copied()).collect();
    assert_eq!(
        plain.lookup(lookups),
        expected_lookups,
        "{ctx}: plain lookup"
    );
    assert_eq!(sharded.lookup(lookups), expected_lookups, "{ctx}: lookup");
    let expected_counts: Vec<u32> = intervals
        .iter()
        .map(|&(lo, hi)| {
            if lo > hi {
                0
            } else {
                model.range(lo..=hi).count() as u32
            }
        })
        .collect();
    assert_eq!(sharded.count(intervals), expected_counts, "{ctx}: count");
    let ranges = sharded.range(intervals);
    for (qi, &(lo, hi)) in intervals.iter().enumerate() {
        let expected: Vec<(u32, u32)> = if lo > hi {
            Vec::new()
        } else {
            model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect()
        };
        let got: Vec<(u32, u32)> = ranges.iter_query(qi).collect();
        assert_eq!(got, expected, "{ctx}: range query {qi}");
    }
}

#[test]
fn sharded_differential_with_rebalancing_mid_sequence() {
    // The rebalancing differential: splits and merges land *between*
    // batches of a live mixed sequence, and no query answer may move —
    // the learned boundaries re-tile the domain but every key keeps
    // exactly one owner holding its visible state.
    let device = Arc::new(Device::new(DeviceConfig::small()));
    let probe_router = ShardRouter::new(8).unwrap();
    let mut rng = StdRng::seed_from_u64(0xBA1A);
    let batch_size = 128;
    let mut plain = GpuLsm::new(device.clone(), batch_size).unwrap();
    let sharded = ShardedLsm::new(device, batch_size, 2).unwrap();
    let mut model: BTreeMap<u32, u32> = BTreeMap::new();
    let mut last_epoch = 0;

    for i in 0..30 {
        let batch = random_batch(&mut rng, &probe_router, batch_size);
        plain.update(&batch).unwrap();
        sharded.update(&batch).unwrap();
        for op in batch.ops() {
            match *op {
                Op::Insert(k, v) => {
                    model.insert(k, v);
                }
                Op::Delete(k) => {
                    model.remove(&k);
                }
            }
        }
        if i == 14 {
            plain.cleanup();
            sharded.cleanup();
        }

        // Rebalance mid-sequence: mostly splits (fitted keys), with
        // periodic merges so both directions run against live data.
        if i % 3 == 1 {
            let n = sharded.num_shards();
            if n >= 12 {
                sharded.merge_shards(rng.gen_range(0..n - 1)).unwrap();
            } else {
                // A shard owning a single key is legitimately unsplittable.
                let _ = sharded.split_shard(rng.gen_range(0..n));
            }
        }
        if i % 7 == 6 && sharded.num_shards() > 1 {
            let n = sharded.num_shards();
            sharded.merge_shards(rng.gen_range(0..n - 1)).unwrap();
        }
        assert!(sharded.epoch() >= last_epoch, "epoch must be monotonic");
        last_epoch = sharded.epoch();

        let mut lookups: Vec<u32> = batch.ops().iter().map(|op| op.key()).collect();
        lookups.extend((0..32).map(|_| boundary_biased_key(&mut rng, &probe_router)));
        lookups.extend(sharded.router().split_points());
        let intervals = boundary_intervals(&mut rng, &probe_router);
        assert_matches_model(
            &sharded,
            &plain,
            &model,
            &lookups,
            &intervals,
            &format!("batch {i}"),
        );
        sharded.check_invariants().unwrap();
    }
    let stats = sharded.stats();
    assert!(stats.rebalance_splits >= 3, "suite must actually split");
    assert!(stats.rebalance_merges >= 2, "suite must actually merge");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Split-point routing with *arbitrary* valid boundaries: the stable
    /// batch split preserves within-batch op order per shard (so rules 4/6
    /// stay shard-local decisions), every op lands on the shard owning its
    /// key, no op is lost or duplicated — and the full service built on
    /// those boundaries answers exactly like the unsharded structure, with
    /// reassembled ranges globally key-ordered.
    #[test]
    fn learned_router_preserves_order_and_answers(
        seed in any::<u64>(),
        raw_bounds in proptest::collection::vec(1u32..=MAX_KEY, 1..6),
        num_batches in 1usize..5,
        batch_size in 1usize..40,
    ) {
        let mut boundaries = raw_bounds;
        boundaries.sort_unstable();
        boundaries.dedup();
        let router = ShardRouter::learned(boundaries.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let batches: Vec<UpdateBatch> = (0..num_batches)
            .map(|_| random_batch(&mut rng, &router, batch_size))
            .collect();

        // Routing invariants of the split itself.
        for batch in &batches {
            let parts = router.split_updates(batch);
            prop_assert_eq!(parts.len(), router.num_shards());
            let mut total = 0;
            for (s, part) in parts.iter().enumerate() {
                let expected: Vec<Op> = batch
                    .ops()
                    .iter()
                    .copied()
                    .filter(|op| router.shard_of(op.key()) == s)
                    .collect();
                prop_assert_eq!(part.ops(), expected.as_slice());
                total += part.len();
            }
            prop_assert_eq!(total, batch.len());
        }

        // Service-level differential against the plain LSM and the model.
        let device = Arc::new(Device::new(DeviceConfig::small()));
        let service = ShardedLsm::with_router(
            device.clone(),
            batch_size,
            router.clone(),
            LsmConfig::default(),
        )
        .unwrap();
        let mut plain = GpuLsm::new(device, batch_size).unwrap();
        let mut model: BTreeMap<u32, u32> = BTreeMap::new();
        for batch in &batches {
            service.update(batch).unwrap();
            plain.update(batch).unwrap();
            for op in batch.ops() {
                match *op {
                    Op::Insert(k, v) => {
                        model.insert(k, v);
                    }
                    Op::Delete(k) => {
                        model.remove(&k);
                    }
                }
            }
        }
        let mut lookups: Vec<u32> = batches
            .iter()
            .flat_map(|b| b.ops().iter().map(|op| op.key()))
            .collect();
        lookups.extend(boundaries.iter().copied());
        let expected_lookups: Vec<Option<u32>> =
            lookups.iter().map(|k| model.get(k).copied()).collect();
        prop_assert_eq!(service.lookup(&lookups), expected_lookups.clone());
        prop_assert_eq!(plain.lookup(&lookups), expected_lookups);
        let intervals = boundary_intervals(&mut rng, &router);
        prop_assert_eq!(service.count(&intervals), plain.count(&intervals));
        let ranges = service.range(&intervals);
        for (qi, &(lo, hi)) in intervals.iter().enumerate() {
            let expected: Vec<(u32, u32)> = if lo > hi {
                Vec::new()
            } else {
                model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect()
            };
            let got: Vec<(u32, u32)> = ranges.iter_query(qi).collect();
            prop_assert!(
                got.windows(2).all(|w| w[0].0 < w[1].0),
                "range {} not globally key-ordered", qi
            );
            prop_assert_eq!(got, expected, "range query {}", qi);
        }
        service.check_invariants().unwrap();
    }
}

#[test]
fn memory_accounting_is_tracked_for_all_structures() {
    let dev = device();
    let pairs = unique_random_pairs(10_000, 34);
    let lsm = GpuLsm::bulk_build(dev.clone(), 1024, &pairs).unwrap();
    let sa = SortedArray::bulk_build(dev.clone(), &pairs);
    let cuckoo = CuckooHashTable::bulk_build(dev.clone(), &pairs);
    // The LSM and SA store keys + values (8 bytes/element); the cuckoo table
    // stores packed 8-byte slots at 1/load_factor slots per element.
    assert!(lsm.memory_bytes() >= pairs.len() * 8);
    assert!(sa.memory_bytes() >= pairs.len() * 8);
    assert!(cuckoo.memory_bytes() >= pairs.len() * 8);
    assert!(cuckoo.memory_bytes() < pairs.len() * 16);
    // Device-level traffic was recorded for the builds.
    assert!(dev.metrics().total().total_bytes() > 0);
    assert!(dev.estimated_time().total_seconds > 0.0);
}
