//! Cross-structure agreement: the GPU LSM, the sorted-array baseline and the
//! cuckoo hash table must give identical answers on the workloads they all
//! support, since the paper's tables compare their performance on the same
//! query streams.

use std::sync::Arc;

use gpu_baselines::{CuckooHashTable, SortedArray};
use gpu_lsm::GpuLsm;
use gpu_sim::{Device, DeviceConfig};
use lsm_workloads::{
    existing_lookups, missing_lookups, range_queries_with_expected_width, unique_random_pairs,
};

fn device() -> Arc<Device> {
    Arc::new(Device::new(DeviceConfig::small()))
}

#[test]
fn all_structures_agree_on_lookups() {
    let pairs = unique_random_pairs(20_000, 31);
    let keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
    let lsm = GpuLsm::bulk_build(device(), 1024, &pairs).unwrap();
    let sa = SortedArray::bulk_build(device(), &pairs);
    let cuckoo = CuckooHashTable::bulk_build(device(), &pairs);

    let hits = existing_lookups(&keys, 4000, 1);
    let misses = missing_lookups(&keys, 4000, 2);
    for queries in [&hits, &misses] {
        let from_lsm = lsm.lookup(queries);
        let from_sa = sa.lookup(queries);
        let from_cuckoo = cuckoo.lookup(queries);
        assert_eq!(from_lsm, from_sa);
        assert_eq!(from_lsm, from_cuckoo);
    }
}

#[test]
fn lsm_and_sa_agree_on_counts_and_ranges() {
    let pairs = unique_random_pairs(30_000, 32);
    let lsm = GpuLsm::bulk_build(device(), 2048, &pairs).unwrap();
    let sa = SortedArray::bulk_build(device(), &pairs);

    for expected_width in [4usize, 64, 512] {
        let queries = range_queries_with_expected_width(
            pairs.len(),
            expected_width,
            200,
            expected_width as u64,
        );
        let lsm_counts = lsm.count(&queries);
        let sa_counts = sa.count(&queries);
        assert_eq!(
            lsm_counts, sa_counts,
            "counts disagree at L = {expected_width}"
        );

        let lsm_ranges = lsm.range(&queries);
        let (sa_offsets, sa_keys, sa_values) = sa.range(&queries);
        assert_eq!(lsm_ranges.offsets, sa_offsets);
        assert_eq!(lsm_ranges.keys, sa_keys);
        assert_eq!(lsm_ranges.values, sa_values);
    }
}

#[test]
fn structures_agree_after_equivalent_updates() {
    // Apply the same batches (inserts of fresh keys, then deletions) to the
    // LSM and the sorted array and check the answers stay identical.
    let pairs = unique_random_pairs(8_192, 33);
    let batch = 1024;
    let mut lsm = GpuLsm::new(device(), batch).unwrap();
    let mut sa = SortedArray::new(device());
    for chunk in pairs.chunks(batch) {
        lsm.insert(chunk).unwrap();
        sa.insert_batch(chunk);
    }
    // Delete one in four keys.
    let doomed: Vec<u32> = pairs.iter().step_by(4).map(|&(k, _)| k).collect();
    for chunk in doomed.chunks(batch) {
        lsm.delete(chunk).unwrap();
        sa.delete_batch(chunk);
    }

    let keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
    let queries = existing_lookups(&keys, 3000, 3);
    assert_eq!(lsm.lookup(&queries), sa.lookup(&queries));

    let intervals = range_queries_with_expected_width(pairs.len(), 32, 100, 4);
    assert_eq!(lsm.count(&intervals), sa.count(&intervals));

    // Cleanup must not change agreement.
    lsm.cleanup();
    assert_eq!(lsm.lookup(&queries), sa.lookup(&queries));
    assert_eq!(lsm.count(&intervals), sa.count(&intervals));
}

#[test]
fn memory_accounting_is_tracked_for_all_structures() {
    let dev = device();
    let pairs = unique_random_pairs(10_000, 34);
    let lsm = GpuLsm::bulk_build(dev.clone(), 1024, &pairs).unwrap();
    let sa = SortedArray::bulk_build(dev.clone(), &pairs);
    let cuckoo = CuckooHashTable::bulk_build(dev.clone(), &pairs);
    // The LSM and SA store keys + values (8 bytes/element); the cuckoo table
    // stores packed 8-byte slots at 1/load_factor slots per element.
    assert!(lsm.memory_bytes() >= pairs.len() * 8);
    assert!(sa.memory_bytes() >= pairs.len() * 8);
    assert!(cuckoo.memory_bytes() >= pairs.len() * 8);
    assert!(cuckoo.memory_bytes() < pairs.len() * 16);
    // Device-level traffic was recorded for the builds.
    assert!(dev.metrics().total().total_bytes() > 0);
    assert!(dev.estimated_time().total_seconds > 0.0);
}
