//! Shape tests for the paper's headline experimental claims, at reduced
//! problem sizes.  These do not check absolute numbers (our substrate is a
//! CPU-hosted model, not a K40c); they check the *orderings and trends* that
//! the paper's tables and figures report, which is what EXPERIMENTS.md
//! documents in detail.
//!
//! All assertions are on **modelled device time** — the cost model applied
//! to the memory traffic each operation records — rather than wall-clock
//! time.  Modelled time is a pure function of the workload, so these tests
//! are deterministic, don't need to be serialised against each other, and
//! are immune to loaded CI hosts (the experiments still *measure* wall time
//! alongside, which is what the report binaries print).

use lsm_bench::experiments::{fig4, table1, table2};
use lsm_workloads::SweepConfig;

#[test]
fn table2_shape_lsm_updates_beat_sorted_array_updates() {
    // Paper: averaged over batch sizes, the GPU LSM inserts ~13.5x faster
    // than the sorted array; per batch size the mean rate is always better.
    let config = SweepConfig {
        total_elements: 1 << 14,
        batch_sizes: vec![1 << 7, 1 << 9],
        seed: 42,
    };
    let result = table2::run(&config, 12);
    for row in &result.rows {
        assert!(
            row.lsm_modelled.harmonic_mean > row.sa_modelled.harmonic_mean,
            "b = {}: LSM modelled mean {} should beat SA modelled mean {}",
            row.batch_size,
            row.lsm_modelled.harmonic_mean,
            row.sa_modelled.harmonic_mean
        );
    }
    assert!(
        result.lsm_overall_modelled_mean > 1.5 * result.sa_overall_modelled_mean,
        "overall LSM modelled mean {} should be well above SA modelled mean {}",
        result.lsm_overall_modelled_mean,
        result.sa_overall_modelled_mean
    );
}

#[test]
fn table2_shape_smaller_batches_mean_slower_lsm_insertion() {
    // Paper Table II: for a fixed n, smaller b means more occupied levels,
    // more iterative merges and a lower mean insertion rate.
    //
    // Both batch sizes sit *above* the radix sort's comparison-sort cutoff
    // (4Ki): the paper's shape assumes a linear-time sort, whose
    // per-element traffic is independent of b.  Below the cutoff the
    // comparison sort's cost profile differs, which would blur the very
    // gradient this test asserts.
    let config = SweepConfig {
        total_elements: 1 << 18,
        batch_sizes: vec![1 << 13, 1 << 16],
        seed: 43,
    };
    let result = table2::run(&config, 4);
    let small = result
        .rows
        .iter()
        .find(|r| r.batch_size == 1 << 13)
        .unwrap();
    let large = result
        .rows
        .iter()
        .find(|r| r.batch_size == 1 << 16)
        .unwrap();
    assert!(
        large.lsm_modelled.harmonic_mean > small.lsm_modelled.harmonic_mean,
        "larger batches should insert faster on average: {} vs {}",
        large.lsm_modelled.harmonic_mean,
        small.lsm_modelled.harmonic_mean
    );
}

#[test]
fn fig4b_shape_effective_rate_gap_grows_with_n() {
    // Paper Fig. 4b: as more batches are inserted, the sorted array's
    // effective rate collapses (O(1/n)) while the LSM's degrades slowly
    // (O(1/log n)), so the ratio between them grows.
    let b = 1 << 8;
    let lsm = fig4::run_fig4b_lsm(b, 32, 7);
    let sa = fig4::run_fig4b_sa(b, 32, 7);
    let ratio_early = lsm.points[3].modelled_rate / sa.points[3].modelled_rate;
    let ratio_late = lsm.points[31].modelled_rate / sa.points[31].modelled_rate;
    assert!(
        ratio_late > ratio_early,
        "LSM advantage should grow with n: early {ratio_early:.2}x, late {ratio_late:.2}x"
    );
    assert!(ratio_late > 1.0, "LSM should win outright by the end");
}

#[test]
fn table1_shape_growth_exponents_separate_linear_from_polylog() {
    // Paper Table I: per-item SA updates are O(n); LSM updates are O(log n).
    let result = table1::run(&[1 << 11, 1 << 13, 1 << 15], 1 << 8, 1 << 11, 44);
    assert!(
        result.sa_insert_modelled_exponent > 0.5,
        "SA insert cost should grow roughly linearly, exponent {}",
        result.sa_insert_modelled_exponent
    );
    assert!(
        result.lsm_insert_modelled_exponent < result.sa_insert_modelled_exponent,
        "LSM insert growth {} should be below SA growth {}",
        result.lsm_insert_modelled_exponent,
        result.sa_insert_modelled_exponent
    );
    assert!(
        result.cuckoo_lookup_modelled_exponent < 0.5,
        "cuckoo lookups should be ~constant, exponent {}",
        result.cuckoo_lookup_modelled_exponent
    );
}

#[test]
fn fig4a_shape_insertion_time_follows_the_carry_chain() {
    // Paper Fig. 4a: insertion time spikes exactly when the carry chain is
    // long (r with many trailing zeros) and is lowest when level 0 is empty.
    let points = fig4::run_fig4a(1 << 9, 32, 45);
    // Average time of insertions with no merge (odd r) must be below the
    // average of insertions with >= 2 merges (r divisible by 4).
    let no_merge: Vec<f64> = points
        .iter()
        .filter(|p| p.resident_batches % 2 == 1)
        .map(|p| p.modelled_ms)
        .collect();
    let long_chain: Vec<f64> = points
        .iter()
        .filter(|p| p.resident_batches % 4 == 0)
        .map(|p| p.modelled_ms)
        .collect();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        avg(&long_chain) > avg(&no_merge),
        "carry-chain insertions ({:.5} modelled ms) should cost more than merge-free ones ({:.5} modelled ms)",
        avg(&long_chain),
        avg(&no_merge)
    );
}
