//! Quickstart: build a GPU LSM, insert and delete batches, run every kind of
//! query, inspect statistics, and clean up.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use gpu_lsm::{GpuLsm, UpdateBatch};
use gpu_sim::Device;

fn main() {
    // The device models the paper's NVIDIA Tesla K40c; all bulk operations
    // execute data-parallel on the host while traffic is accounted against
    // the device's cost model.
    let device = Arc::new(Device::k40c());
    let batch_size = 1 << 12;
    let mut lsm = GpuLsm::new(device.clone(), batch_size).expect("create GPU LSM");

    // Insert four full batches of key-value pairs.
    for b in 0..4u32 {
        let pairs: Vec<(u32, u32)> = (0..batch_size as u32)
            .map(|i| (b * batch_size as u32 + i, i * 10))
            .collect();
        lsm.insert(&pairs).expect("insert batch");
    }
    println!(
        "inserted {} elements in {} batches across {} occupied levels",
        lsm.num_resident_elements(),
        lsm.num_batches(),
        lsm.num_occupied_levels()
    );

    // Point lookups.
    let queries = vec![0, 123, 9999, 50_000];
    let results = lsm.lookup(&queries);
    for (q, r) in queries.iter().zip(&results) {
        println!("lookup({q}) = {r:?}");
    }

    // A mixed batch: replace some keys, delete others.
    let mut batch = UpdateBatch::new();
    for k in 0..100u32 {
        batch.insert(k, 777);
    }
    for k in 1000..1100u32 {
        batch.delete(k);
    }
    lsm.update(&batch).expect("mixed update");
    println!(
        "after mixed batch: lookup(5) = {:?}, lookup(1005) = {:?}",
        lsm.lookup_one(5),
        lsm.lookup_one(1005)
    );

    // Count and range queries.
    let counts = lsm.count(&[(0, 999), (1000, 1099), (0, 65_535)]);
    println!(
        "counts: 0..=999 -> {}, 1000..=1099 -> {}, all -> {}",
        counts[0], counts[1], counts[2]
    );
    let ranges = lsm.range(&[(42, 52)]);
    println!("range 42..=52:");
    for (k, v) in ranges.iter_query(0) {
        println!("  key {k} -> value {v}");
    }

    // Structure statistics and cleanup.
    let stats = lsm.stats();
    println!(
        "before cleanup: {} resident, {} valid, {:.1}% stale, {} levels, {} KiB",
        stats.total_elements,
        stats.valid_elements,
        stats.stale_fraction() * 100.0,
        stats.occupied_levels,
        stats.memory_bytes / 1024
    );
    let report = lsm.cleanup();
    println!(
        "cleanup removed {} stale elements ({} -> {} levels)",
        report.removed_elements, report.levels_before, report.levels_after
    );

    // The device kept track of the traffic all of this generated.
    let est = device.estimated_time();
    println!(
        "modelled device time for the whole session: {:.3} ms ({} bytes moved)",
        est.total_seconds * 1e3,
        device.metrics().total().total_bytes()
    );
}
