//! Streaming geo-tagged events with windowed region queries — modelled on
//! the paper's "real-time tweet visualization from a user-defined
//! geographical region" motivation.
//!
//! Events arrive in batches; each event's key is a 31-bit geohash-style cell
//! id (here: 15-bit latitude band × 16-bit longitude band, concatenated so
//! that one latitude band is a contiguous key range) and its value is an
//! event id.  A dashboard repeatedly issues COUNT queries for latitude/
//! longitude windows, and old events are retired with deletion batches, with
//! periodic cleanups to keep query latency low.
//!
//! Run with: `cargo run --release --example geo_stream`

use std::collections::VecDeque;
use std::sync::Arc;

use gpu_lsm::{GpuLsm, UpdateBatch};
use gpu_sim::Device;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const LON_BITS: u32 = 16;

/// Cell id: latitude band in the high bits, longitude in the low bits.
fn cell(lat_band: u32, lon_band: u32) -> u32 {
    (lat_band << LON_BITS) | lon_band
}

fn main() {
    let device = Arc::new(Device::k40c());
    let batch_size = 1 << 13;
    let retention_batches = 6; // keep the last 6 batches of events "live"
    let mut lsm = GpuLsm::new(device, batch_size).expect("create GPU LSM");
    let mut rng = StdRng::seed_from_u64(7);

    // Hot-spot model: most events cluster around a few cities.
    let cities: Vec<(u32, u32)> = (0..8)
        .map(|_| (rng.gen_range(0..1 << 15), rng.gen_range(0..1 << 16)))
        .collect();

    let mut history: VecDeque<Vec<u32>> = VecDeque::new();
    let mut next_event_id = 0u32;

    for step in 0..12 {
        // Ingest one batch of events.
        let mut batch = UpdateBatch::with_capacity(batch_size);
        let mut keys_this_batch = Vec::with_capacity(batch_size);
        for _ in 0..batch_size {
            let (clat, clon) = cities[rng.gen_range(0..cities.len())];
            let lat = (clat + rng.gen_range(0..64)).min((1 << 15) - 1);
            let lon = (clon + rng.gen_range(0..64)).min((1 << 16) - 1);
            let key = cell(lat, lon);
            batch.insert(key, next_event_id);
            keys_this_batch.push(key);
            next_event_id += 1;
        }
        lsm.update(&batch).expect("ingest batch");
        history.push_back(keys_this_batch);

        // Retire events that fell out of the retention window.
        if history.len() > retention_batches {
            let expired = history.pop_front().unwrap();
            for chunk in expired.chunks(batch_size) {
                lsm.delete(chunk).expect("retire batch");
            }
        }

        // Dashboard: count events in a window of latitude bands around the
        // first city (each latitude band is one contiguous key range).
        let (clat, _) = cities[0];
        let windows: Vec<(u32, u32)> = (0..4)
            .map(|d| {
                let band = clat + d * 16;
                (cell(band, 0), cell(band, (1 << 16) - 1))
            })
            .collect();
        let counts = lsm.count(&windows);
        let stats = lsm.stats();
        println!(
            "step {step:>2}: {:>8} resident ({:>5.1}% stale, {} levels) | occupied cells per lat band near city 0: {:?}",
            stats.total_elements,
            stats.stale_fraction() * 100.0,
            stats.occupied_levels,
            counts
        );

        // Clean up when staleness gets high, as §V-D recommends for
        // query-heavy phases.
        if stats.stale_fraction() > 0.4 {
            let report = lsm.cleanup();
            println!(
                "         cleanup: {} -> {} elements, {} -> {} levels",
                report.elements_before,
                report.valid_elements + report.placebos_added,
                report.levels_before,
                report.levels_after
            );
        }
    }
}
