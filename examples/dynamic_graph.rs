//! A dynamic graph maintained as a dictionary of edges — the paper's
//! introduction lists "processing dynamic graphs and trees" as a target
//! application for a mutable GPU dictionary.
//!
//! Each directed edge (u, v) is one dictionary entry: the key packs the
//! source vertex in the high bits and the destination in the low bits, and
//! the value carries the edge weight.  Because all of a vertex's out-edges
//! form one contiguous key range, adjacency queries are RANGE operations and
//! out-degrees are COUNT operations; edge insertions and removals arrive in
//! batches, exactly the LSM's update model.
//!
//! Run with: `cargo run --release --example dynamic_graph`

use std::sync::Arc;

use gpu_lsm::{GpuLsm, UpdateBatch};
use gpu_sim::Device;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DST_BITS: u32 = 15;
const NUM_VERTICES: u32 = 1 << 15;

fn edge_key(src: u32, dst: u32) -> u32 {
    debug_assert!(src < (1 << (31 - DST_BITS)) && dst < (1 << DST_BITS));
    (src << DST_BITS) | dst
}

fn vertex_range(src: u32) -> (u32, u32) {
    (edge_key(src, 0), edge_key(src, (1 << DST_BITS) - 1))
}

fn main() {
    let device = Arc::new(Device::k40c());
    let batch_size = 1 << 13;
    let mut rng = StdRng::seed_from_u64(99);

    // Build an initial random graph (preferential towards low vertex ids so
    // some vertices have large adjacency lists).
    let initial_edges: Vec<(u32, u32)> = (0..200_000)
        .map(|_| {
            let src = rng.gen_range(0..NUM_VERTICES) & rng.gen_range(0..NUM_VERTICES);
            let dst = rng.gen_range(0..1 << DST_BITS);
            (edge_key(src, dst), rng.gen_range(1..100))
        })
        .collect();
    let mut graph = GpuLsm::bulk_build(device, batch_size, &initial_edges).expect("bulk build");
    println!(
        "built graph with {} edge slots in {} levels",
        graph.num_resident_elements(),
        graph.num_occupied_levels()
    );

    // Stream of edge updates: new edges appear, some old edges disappear.
    for round in 0..5 {
        let mut batch = UpdateBatch::with_capacity(batch_size);
        for _ in 0..(batch_size * 3 / 4) {
            let src = rng.gen_range(0..NUM_VERTICES) & rng.gen_range(0..NUM_VERTICES);
            let dst = rng.gen_range(0..1 << DST_BITS);
            batch.insert(edge_key(src, dst), rng.gen_range(1..100));
        }
        for _ in 0..(batch_size / 4) {
            let (k, _) = initial_edges[rng.gen_range(0..initial_edges.len())];
            batch.delete(k);
        }
        graph.update(&batch).expect("edge update batch");

        // Out-degree of a few hub vertices via COUNT, adjacency of one via RANGE.
        let hubs: Vec<u32> = (0..4).collect();
        let degree_queries: Vec<(u32, u32)> = hubs.iter().map(|&v| vertex_range(v)).collect();
        let degrees = graph.count(&degree_queries);
        let adjacency = graph.range(&[vertex_range(hubs[0])]);
        let neighbours: Vec<u32> = adjacency
            .iter_query(0)
            .take(5)
            .map(|(k, _)| k & ((1 << DST_BITS) - 1))
            .collect();
        println!(
            "round {round}: out-degrees of vertices 0..3 = {:?}; first neighbours of vertex 0: {:?}",
            degrees, neighbours
        );
    }

    // Consolidate before a long read-only analytics phase.
    let report = graph.cleanup();
    println!(
        "final cleanup: {} -> {} valid edges, {} -> {} levels",
        report.elements_before, report.valid_elements, report.levels_before, report.levels_after
    );
}
