//! Moving objects with repeated range queries — the paper's introduction
//! motivates the GPU LSM with "processing moving objects (e.g., real-time
//! range queries to find k nearest neighbors for all moving objects in a 2D
//! plane)".
//!
//! Objects live on a 2^15 × 2^15 grid.  Each object's dictionary key is the
//! interleaved Morton code of its cell (30 bits, fits the 31-bit key
//! domain) and its value is the object id.  Every simulation tick a batch of
//! objects moves: the old cell key is tombstoned and the new cell key
//! inserted.  Rectangular window queries decompose into a small set of
//! Morton ranges, answered with the LSM's range operation.
//!
//! Run with: `cargo run --release --example moving_objects`

use std::sync::Arc;

use gpu_lsm::{GpuLsm, UpdateBatch};
use gpu_sim::Device;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID_BITS: u32 = 15;
const GRID: u32 = 1 << GRID_BITS;

/// Interleave the low 15 bits of x and y into a 30-bit Morton code.
fn morton(x: u32, y: u32) -> u32 {
    let mut code = 0u32;
    for bit in 0..GRID_BITS {
        code |= ((x >> bit) & 1) << (2 * bit);
        code |= ((y >> bit) & 1) << (2 * bit + 1);
    }
    code
}

struct Object {
    x: u32,
    y: u32,
}

fn main() {
    let device = Arc::new(Device::k40c());
    let num_objects = 40_000usize;
    let batch_size = 8192usize;
    let mut rng = StdRng::seed_from_u64(2024);

    // Spawn objects and bulk-build the initial index.
    let mut objects: Vec<Object> = (0..num_objects)
        .map(|_| Object {
            x: rng.gen_range(0..GRID),
            y: rng.gen_range(0..GRID),
        })
        .collect();
    let initial: Vec<(u32, u32)> = objects
        .iter()
        .enumerate()
        .map(|(id, o)| (morton(o.x, o.y), id as u32))
        .collect();
    let mut index = GpuLsm::bulk_build(device, batch_size, &initial).expect("bulk build");
    println!(
        "indexed {num_objects} objects in {} levels",
        index.num_occupied_levels()
    );

    // Simulate ticks: a subset of objects moves each tick.
    for tick in 0..6 {
        let movers: Vec<usize> = (0..batch_size / 2)
            .map(|_| rng.gen_range(0..num_objects))
            .collect();
        let mut batch = UpdateBatch::with_capacity(batch_size);
        for &id in &movers {
            let old_key = morton(objects[id].x, objects[id].y);
            // Random walk with reflection at the borders.
            let o = &mut objects[id];
            o.x = (o.x + rng.gen_range(0..8)).min(GRID - 1);
            o.y = (o.y + rng.gen_range(0..8)).min(GRID - 1);
            let new_key = morton(o.x, o.y);
            if new_key != old_key {
                batch.delete(old_key);
                batch.insert(new_key, id as u32);
            }
        }
        if batch.is_empty() {
            continue;
        }
        index.update(&batch).expect("tick update");

        // Window query: how many objects are in a square around the centre?
        // A Morton-aligned square of side 2^k maps to one contiguous code
        // range, so align the query window to the quadtree cell containing
        // the centre point.
        let k = 11u32; // 2^11 x 2^11 window
        let cx = (GRID / 2) & !((1 << k) - 1);
        let cy = (GRID / 2) & !((1 << k) - 1);
        let lo = morton(cx, cy);
        let hi = lo + (1 << (2 * k)) - 1;
        let count = index.count(&[(lo, hi)])[0];
        println!(
            "tick {tick}: moved {} objects, {} objects inside the {}x{} centre window, {} levels",
            movers.len(),
            count,
            1 << k,
            1 << k,
            index.num_occupied_levels()
        );

        // Periodic cleanup keeps tombstones from accumulating.
        if tick % 3 == 2 {
            let report = index.cleanup();
            println!(
                "  cleanup: removed {} stale elements, levels {} -> {}",
                report.removed_elements, report.levels_before, report.levels_after
            );
        }
    }

    // Final sanity check: every object is findable at its current cell.
    let sample: Vec<u32> = (0..64)
        .map(|i| morton(objects[i].x, objects[i].y))
        .collect();
    let found = index.lookup(&sample).iter().filter(|r| r.is_some()).count();
    println!("spot check: {found}/64 sampled objects found at their current cells");
}
